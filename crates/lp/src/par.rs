//! Shared-state primitives for intra-request parallel solving.
//!
//! Everything multi-threaded in this crate lives here: the branch-and-bound
//! worker pool's open-node heap, the shared incumbent cell, the first-result
//! cell, and the LP portfolio race. This file is the **only** place in
//! `teccl-lp` allowed to touch raw `Mutex`/`Condvar` primitives (the
//! `lock-discipline` lint enforces the confinement), so the rest of the
//! solver stays obviously single-threaded and the whole concurrency story is
//! auditable in one screenful.
//!
//! ## Parallel branch-and-bound ([`NodePool`])
//!
//! The pool is a mutex-protected best-first heap of open nodes plus the set
//! of *in-flight* node scores (nodes popped but not yet [`NodePool::finish`]ed).
//! Termination is the classic two-condition rule: a worker stops when the
//! pool reports a [`PoolStop`] cause, and the search is *drained* when the
//! heap is empty **and** no node is in flight — an in-flight node may still
//! push children, so an empty heap alone proves nothing. Because every child
//! bound is no better than its parent's, the maximum over heap scores and
//! in-flight scores is a valid global dual bound at every instant
//! ([`NodePool::global_bound`]).
//!
//! ## Shared incumbent ([`SharedBest`])
//!
//! Workers prune against the global best incumbent. The score rides in an
//! `AtomicU64` (f64 bits) so the hot prune check is one relaxed load; the
//! payload sits behind a mutex that is only taken when the atomic says the
//! offer might win. Scores are *normalized* (higher is better, i.e. the
//! caller negates minimization objectives) so `f64::NEG_INFINITY` is the
//! universal "no incumbent yet".
//!
//! ## LP portfolio racing ([`race_lp`])
//!
//! The monolithic pure-LP path (the paper's hardest 16-GPU ALLTOALL shape)
//! has no tree to parallelize, but simplex run time on degenerate LPs is
//! highly configuration-sensitive. [`race_lp`] runs 2–4 configurations of
//! the same LP concurrently — steepest-edge (the production default), devex,
//! a re-seeded perturbation, and perturbation-off — each under a
//! [`SolveBudget::child`] budget; the first racer to return a *certified*
//! outcome (optimal/infeasible/unbounded, not a budget-stopped vertex) wins
//! and cancels the rest through the child cancel flags, leaving the caller's
//! own budget untouched. If nobody certifies (deadline hit), racer 0 — the
//! solo production configuration — is the answer, so racing never changes
//! *what* is returned, only (sometimes) how fast.

use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::basis::SimplexBasis;
use crate::error::LpError;
use crate::simplex::{self, PricingRule, SimplexOptions};
use crate::solution::Solution;
use crate::standard::StandardForm;
use teccl_util::{BudgetExceeded, SolveBudget};

/// Minimum standard-form row count before the pure-LP portfolio race engages.
/// Below this the LP solves in milliseconds and thread spawn + duplicated
/// work can only lose; above it the variance between pricing rules on
/// degenerate LPs is large enough that racing pays for itself.
pub const RACE_MIN_ROWS: usize = 200;

/// How long a pool waiter sleeps before re-checking the budget and the
/// drain condition (a backstop — pushes and stops wake waiters eagerly).
const WAIT_SLICE: Duration = Duration::from_millis(20);

/// Locks a mutex, clearing poison left by a panicked holder. The structures
/// in this module hold no multi-step invariants across panics (heap and
/// in-flight bookkeeping are updated atomically under one lock scope), so
/// recovering is always safe.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Why a [`NodePool`] stopped handing out nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolStop {
    /// The incumbent/bound gap reached the configured tolerance.
    GapReached,
    /// A node or time limit tripped.
    Limit,
    /// The cooperative [`SolveBudget`] was exhausted.
    Budget(BudgetExceeded),
    /// A worker hit a hard solver error (recorded separately by the caller).
    Error,
}

/// A node handed out by [`NodePool::pop`]: the caller must pass the same
/// `score` back to [`NodePool::finish`] once the node's children (if any)
/// have been pushed.
#[derive(Debug)]
pub struct ScoredNode<T> {
    /// Normalized bound score (higher is better).
    pub score: f64,
    /// Monotone pop sequence number (diagnostic only).
    pub seq: u64,
    /// The caller's node payload.
    pub item: T,
}

/// Result of a [`NodePool::pop`].
#[derive(Debug)]
pub enum Popped<T> {
    /// A node to process; pair with [`NodePool::finish`].
    Node(ScoredNode<T>),
    /// Heap empty and nothing in flight: the search space is exhausted.
    Drained,
    /// The pool was stopped; the cause is sticky and first-wins.
    Stopped(PoolStop),
}

struct PoolEntry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for PoolEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl<T> Eq for PoolEntry<T> {}
impl<T> PartialOrd for PoolEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for PoolEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Best score first; ties broken by lower sequence number (older
        // node), matching the sequential heap's deterministic tie-break.
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct PoolState<T> {
    heap: BinaryHeap<PoolEntry<T>>,
    /// Scores (f64 bits) of nodes popped but not yet finished. Needed both
    /// for the drain condition and for the global bound.
    in_flight: Vec<u64>,
    /// Nodes handed out so far (the node-limit accounting).
    popped: usize,
    /// Sticky stop cause; the first writer wins.
    stop: Option<PoolStop>,
    next_seq: u64,
}

/// The shared best-first open-node pool for parallel branch-and-bound.
pub struct NodePool<T> {
    state: Mutex<PoolState<T>>,
    cv: Condvar,
}

impl<T> Default for NodePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> NodePool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        NodePool {
            state: Mutex::new(PoolState {
                heap: BinaryHeap::new(),
                in_flight: Vec::new(),
                popped: 0,
                stop: None,
                next_seq: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Pushes an open node with its normalized bound score and wakes one
    /// waiter.
    pub fn push(&self, score: f64, item: T) {
        let mut st = lock_unpoisoned(&self.state);
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(PoolEntry { score, seq, item });
        drop(st);
        self.cv.notify_one();
    }

    /// Pops the best open node, blocking while siblings are in flight (they
    /// may still push children). Returns [`Popped::Drained`] when the search
    /// space is exhausted and [`Popped::Stopped`] when a stop cause is (or
    /// becomes) set — including the `node_limit` and the budget, both of
    /// which this method checks itself.
    pub fn pop(&self, node_limit: usize, budget: Option<&SolveBudget>) -> Popped<T> {
        let mut st = lock_unpoisoned(&self.state);
        loop {
            if let Some(cause) = st.stop {
                return Popped::Stopped(cause);
            }
            // Cooperative budget check once per wakeup: a deadline or cancel
            // stops every worker within one WAIT_SLICE even if no pivots are
            // running anywhere.
            if let Some(b) = budget {
                if let Some(cause) = b.exceeded() {
                    st.stop = Some(PoolStop::Budget(cause));
                    self.cv.notify_all();
                    return Popped::Stopped(PoolStop::Budget(cause));
                }
            }
            if st.popped >= node_limit {
                st.stop = Some(PoolStop::Limit);
                self.cv.notify_all();
                return Popped::Stopped(PoolStop::Limit);
            }
            if let Some(entry) = st.heap.pop() {
                st.popped += 1;
                st.in_flight.push(entry.score.to_bits());
                return Popped::Node(ScoredNode {
                    score: entry.score,
                    seq: entry.seq,
                    item: entry.item,
                });
            }
            if st.in_flight.is_empty() {
                // Fully drained; wake the other sleepers so they observe it.
                self.cv.notify_all();
                return Popped::Drained;
            }
            st = match self.cv.wait_timeout(st, WAIT_SLICE) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Marks a popped node as fully processed (its children, if any, are
    /// already pushed). Must be called exactly once per [`Popped::Node`],
    /// with the score the pop returned.
    pub fn finish(&self, score: f64) {
        let mut st = lock_unpoisoned(&self.state);
        let bits = score.to_bits();
        if let Some(pos) = st.in_flight.iter().position(|&b| b == bits) {
            st.in_flight.swap_remove(pos);
        }
        let drained = st.heap.is_empty() && st.in_flight.is_empty();
        drop(st);
        if drained {
            self.cv.notify_all();
        }
    }

    /// Sets the stop cause (first caller wins) and wakes every waiter.
    pub fn stop(&self, cause: PoolStop) {
        let mut st = lock_unpoisoned(&self.state);
        if st.stop.is_none() {
            st.stop = Some(cause);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// The sticky stop cause, if any worker set one.
    pub fn stop_cause(&self) -> Option<PoolStop> {
        lock_unpoisoned(&self.state).stop
    }

    /// Number of nodes handed out so far.
    pub fn popped(&self) -> usize {
        lock_unpoisoned(&self.state).popped
    }

    /// The global dual bound: the best score over open and in-flight nodes
    /// (every child's bound is no better than its parent's, so this is a
    /// valid bound on anything the search can still find). `None` when the
    /// pool is drained.
    pub fn global_bound(&self) -> Option<f64> {
        let st = lock_unpoisoned(&self.state);
        let mut best: Option<f64> = st.heap.peek().map(|e| e.score);
        for &bits in &st.in_flight {
            let s = f64::from_bits(bits);
            if best.is_none_or(|b| s > b) {
                best = Some(s);
            }
        }
        best
    }
}

/// The margin by which an offer must beat the current best to replace it;
/// mirrors the sequential solver's `better()` tie tolerance so parallel and
/// sequential runs accept the same incumbents.
const BEST_MARGIN: f64 = 1e-9;

/// A shared incumbent cell: a lock-free score fast path over a mutexed
/// payload. Scores are normalized (higher is better).
pub struct SharedBest<T> {
    score_bits: AtomicU64,
    slot: Mutex<Option<T>>,
}

impl<T> Default for SharedBest<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedBest<T> {
    /// An empty cell (score `NEG_INFINITY`).
    pub fn new() -> Self {
        SharedBest {
            score_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            slot: Mutex::new(None),
        }
    }

    /// The current best score — one relaxed load, safe to call from the hot
    /// prune path. `NEG_INFINITY` means no incumbent yet.
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits.load(Ordering::Relaxed))
    }

    /// Installs `item` if its score strictly beats the current best (by
    /// [`BEST_MARGIN`]). The atomic pre-check rejects losers without taking
    /// the lock; the predicate is re-checked under the lock, and the score
    /// store also happens under the lock, so the atomic can never advertise
    /// a score whose payload was beaten to the slot.
    pub fn offer(&self, score: f64, item: T) -> bool {
        // `partial_cmp` so a NaN score is rejected, never installed.
        let beats = |best: f64| {
            score.partial_cmp(&(best + BEST_MARGIN)) == Some(std::cmp::Ordering::Greater)
        };
        if !beats(self.score()) {
            return false;
        }
        let mut slot = lock_unpoisoned(&self.slot);
        if !beats(f64::from_bits(self.score_bits.load(Ordering::Relaxed))) {
            return false;
        }
        self.score_bits.store(score.to_bits(), Ordering::Relaxed);
        *slot = Some(item);
        true
    }

    /// Consumes the cell, returning the best payload.
    pub fn take(self) -> Option<T> {
        match self.slot.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A write-once cell: the first [`FirstWin::set_if_empty`] wins, later calls
/// are ignored. Used for "first racer to certify" and "first hard error".
pub struct FirstWin<T> {
    slot: Mutex<Option<T>>,
}

impl<T> Default for FirstWin<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FirstWin<T> {
    /// An empty cell.
    pub fn new() -> Self {
        FirstWin {
            slot: Mutex::new(None),
        }
    }

    /// Stores `item` if the cell is still empty; returns whether this call
    /// won.
    pub fn set_if_empty(&self, item: T) -> bool {
        let mut slot = lock_unpoisoned(&self.slot);
        if slot.is_none() {
            *slot = Some(item);
            true
        } else {
            false
        }
    }

    /// Consumes the cell.
    pub fn take(self) -> Option<T> {
        match self.slot.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// The racing portfolio, best-known-first: racer 0 is the production solo
/// configuration (steepest-edge, default perturbation), so the no-winner
/// fallback returns exactly what a solo solve would have.
fn portfolio(threads: usize) -> Vec<SimplexOptions> {
    let all = [
        SimplexOptions::default(),
        SimplexOptions {
            pricing: PricingRule::Devex,
            ..SimplexOptions::default()
        },
        SimplexOptions {
            perturb_seed: 0x7ec_c1ba5e,
            ..SimplexOptions::default()
        },
        SimplexOptions {
            perturb_min_rows: usize::MAX,
            ..SimplexOptions::default()
        },
    ];
    let n = threads.clamp(2, all.len());
    all[..n].to_vec()
}

/// Races 2–4 simplex configurations on the same standard form; the first to
/// return a certified outcome (not budget-stopped) wins and cancels the rest
/// via per-racer [`SolveBudget::child`] budgets. With no certified winner
/// (e.g. the shared deadline tripped everyone), racer 0's result — the solo
/// production configuration — is returned, so racing can change latency but
/// never the answer a caller observes on failure paths.
///
/// Callers should skip the race (and solve solo) when the budget carries an
/// iteration cap: racers charge the same shared counter, so duplicated work
/// would trip the cap early. [`crate::model::Model::solve_with`] does this
/// automatically.
pub fn race_lp(
    sf: &StandardForm,
    num_model_vars: usize,
    overrides: &[(usize, f64, f64)],
    warm: Option<&SimplexBasis>,
    budget: Option<&SolveBudget>,
    threads: usize,
) -> Result<Solution, LpError> {
    let parent = budget.cloned().unwrap_or_default();
    let configs = portfolio(threads);
    let children: Vec<SolveBudget> = configs.iter().map(|_| parent.child()).collect();
    let win_idx: FirstWin<usize> = FirstWin::new();

    let mut outcomes: Vec<Result<Solution, LpError>> = std::thread::scope(|s| {
        let children = &children;
        let win_idx = &win_idx;
        let handles: Vec<_> = configs
            .iter()
            .zip(children.iter())
            .enumerate()
            .map(|(i, (opts, child))| {
                s.spawn(move || {
                    let r = simplex::solve_standard_form_with_options(
                        sf,
                        num_model_vars,
                        overrides,
                        warm,
                        Some(child),
                        opts,
                    );
                    if let Ok(sol) = &r {
                        if sol.stats.budget_stop.is_none() && win_idx.set_if_empty(i) {
                            for (k, c) in children.iter().enumerate() {
                                if k != i {
                                    c.cancel();
                                }
                            }
                        }
                    }
                    r
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });

    match win_idx.take() {
        Some(i) => outcomes.swap_remove(i),
        None => outcomes.swap_remove(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintOp, Model, Sense};
    use crate::presolve;
    use crate::solution::SolveStatus;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_hands_out_best_first_and_drains() {
        let pool: NodePool<&'static str> = NodePool::new();
        pool.push(1.0, "low");
        pool.push(3.0, "high");
        pool.push(2.0, "mid");
        let a = match pool.pop(usize::MAX, None) {
            Popped::Node(n) => n,
            other => panic!("expected node, got {other:?}"),
        };
        assert_eq!(a.item, "high");
        assert_eq!(pool.global_bound(), Some(3.0), "in-flight counts");
        pool.finish(a.score);
        assert_eq!(pool.global_bound(), Some(2.0));
        for expect in ["mid", "low"] {
            match pool.pop(usize::MAX, None) {
                Popped::Node(n) => {
                    assert_eq!(n.item, expect);
                    pool.finish(n.score);
                }
                other => panic!("expected {expect}, got {other:?}"),
            }
        }
        assert!(matches!(pool.pop(usize::MAX, None), Popped::Drained));
        assert_eq!(pool.popped(), 3);
        assert_eq!(pool.global_bound(), None);
    }

    #[test]
    fn pool_node_limit_and_stop_are_sticky() {
        let pool: NodePool<u32> = NodePool::new();
        pool.push(1.0, 7);
        pool.push(0.5, 8);
        match pool.pop(1, None) {
            Popped::Node(n) => pool.finish(n.score),
            other => panic!("first pop must succeed, got {other:?}"),
        }
        assert!(matches!(
            pool.pop(1, None),
            Popped::Stopped(PoolStop::Limit)
        ));
        // A later stop cause does not overwrite the first.
        pool.stop(PoolStop::GapReached);
        assert_eq!(pool.stop_cause(), Some(PoolStop::Limit));
        assert!(matches!(
            pool.pop(usize::MAX, None),
            Popped::Stopped(PoolStop::Limit)
        ));
    }

    #[test]
    fn pool_budget_cancel_stops_waiters() {
        let budget = SolveBudget::unlimited();
        budget.cancel();
        let pool: NodePool<u32> = NodePool::new();
        pool.push(1.0, 1);
        assert!(matches!(
            pool.pop(usize::MAX, Some(&budget)),
            Popped::Stopped(PoolStop::Budget(BudgetExceeded::Cancelled))
        ));
    }

    #[test]
    fn pool_waiter_wakes_on_sibling_push() {
        let pool: NodePool<u32> = NodePool::new();
        pool.push(2.0, 1);
        let first = match pool.pop(usize::MAX, None) {
            Popped::Node(n) => n,
            other => panic!("expected node, got {other:?}"),
        };
        // A second consumer blocks (heap empty, one node in flight), then
        // receives the child the first consumer pushes.
        std::thread::scope(|s| {
            let pool = &pool;
            let waiter = s.spawn(move || match pool.pop(usize::MAX, None) {
                Popped::Node(n) => {
                    pool.finish(n.score);
                    n.item
                }
                other => panic!("expected child node, got {other:?}"),
            });
            std::thread::sleep(Duration::from_millis(5));
            pool.push(1.5, 42);
            pool.finish(first.score);
            assert_eq!(waiter.join().unwrap(), 42);
        });
        assert!(matches!(pool.pop(usize::MAX, None), Popped::Drained));
    }

    #[test]
    fn shared_best_keeps_the_strictly_better_offer() {
        let best: SharedBest<&'static str> = SharedBest::new();
        assert_eq!(best.score(), f64::NEG_INFINITY);
        assert!(best.offer(1.0, "one"));
        assert!(!best.offer(1.0, "tie rejected"));
        assert!(!best.offer(1.0 + BEST_MARGIN / 2.0, "within margin rejected"));
        assert!(best.offer(2.0, "two"));
        assert_eq!(best.score(), 2.0);
        assert_eq!(best.take(), Some("two"));
    }

    #[test]
    fn shared_best_concurrent_offers_keep_max() {
        let best: SharedBest<usize> = SharedBest::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let best = &best;
                s.spawn(move || {
                    for k in 0..100 {
                        let v = t * 100 + k;
                        best.offer(v as f64, v);
                    }
                });
            }
        });
        assert_eq!(best.score(), 399.0);
        assert_eq!(best.take(), Some(399));
    }

    #[test]
    fn first_win_is_write_once() {
        let cell: FirstWin<u32> = FirstWin::new();
        let wins = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let cell = &cell;
                let wins = &wins;
                s.spawn(move || {
                    if cell.set_if_empty(t) {
                        wins.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(wins.load(Ordering::Relaxed), 1);
        assert!(cell.take().is_some());
    }

    /// A transport-style LP (continuous, degenerate enough to have ties) for
    /// exercising the race end to end.
    fn transport_lp(n: usize) -> Model {
        let mut m = Model::new(Sense::Minimize);
        let mut xs = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let c = 1.0 + ((i * 7 + j * 3) % 5) as f64;
                xs.push(m.add_var(format!("x{i}_{j}"), 0.0, f64::INFINITY, c, false));
            }
        }
        for i in 0..n {
            let row: Vec<_> = (0..n).map(|j| (xs[i * n + j], 1.0)).collect();
            m.add_cons(format!("s{i}"), &row, ConstraintOp::Eq, 3.0);
        }
        for j in 0..n {
            let col: Vec<_> = (0..n).map(|i| (xs[i * n + j], 1.0)).collect();
            m.add_cons(format!("d{j}"), &col, ConstraintOp::Eq, 3.0);
        }
        m
    }

    #[test]
    fn race_matches_solo_objective() {
        let m = transport_lp(8);
        let (red, post) = presolve::presolve(&m).unwrap();
        let mut sf = StandardForm::from_model(&red);
        post.relax_free_rows(&mut sf);
        let solo = simplex::solve_standard_form_budgeted(&sf, red.num_vars(), &[], None, None)
            .expect("solo solve");
        for threads in [2, 3, 4, 9] {
            let raced =
                race_lp(&sf, red.num_vars(), &[], None, None, threads).expect("raced solve");
            assert_eq!(raced.status, SolveStatus::Optimal);
            assert!(
                (raced.objective - solo.objective).abs() <= 1e-6,
                "threads={threads}: raced {} vs solo {}",
                raced.objective,
                solo.objective
            );
        }
    }

    #[test]
    fn race_without_winner_returns_racer_zero_outcome() {
        // A parent budget cancelled before the race starts: every racer is
        // cancelled, nobody certifies, and racer 0's budget error surfaces.
        let m = transport_lp(6);
        let (red, post) = presolve::presolve(&m).unwrap();
        let mut sf = StandardForm::from_model(&red);
        post.relax_free_rows(&mut sf);
        let parent = SolveBudget::unlimited();
        parent.cancel();
        let r = race_lp(&sf, red.num_vars(), &[], None, Some(&parent), 4);
        assert!(
            matches!(r, Err(LpError::Budget(BudgetExceeded::Cancelled))),
            "expected cancelled budget error, got {r:?}"
        );
    }
}
