//! Solution and statistics types returned by the LP / MILP solver.

use std::time::Duration;

use teccl_util::budget::BudgetExceeded;

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal solution was found (within tolerances).
    Optimal,
    /// A feasible solution was found but optimality was not proven (early stop
    /// on gap, time limit, or node limit). Mirrors Gurobi's behaviour under the
    /// paper's 2-hour timeout / 30% gap early-stop configuration.
    Feasible,
    /// The problem was proven infeasible.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// The solver hit a limit without finding any feasible solution.
    LimitReached,
}

impl SolveStatus {
    /// Whether a usable (feasible) assignment is available.
    pub fn has_solution(self) -> bool {
        matches!(self, SolveStatus::Optimal | SolveStatus::Feasible)
    }
}

/// Statistics about a solve, loosely mirroring what the paper reports from
/// Gurobi (solver time, primal-dual / MIP gap).
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Wall-clock time spent in the solver (including model reductions).
    pub solve_time: Duration,
    /// Total simplex iterations across all LP solves (primal + dual).
    pub simplex_iterations: usize,
    /// Dual-simplex iterations (a subset of `simplex_iterations`): pivots
    /// performed by the bound-tightening re-solve path.
    pub dual_iterations: usize,
    /// Number of branch-and-bound nodes explored (0 for pure LPs).
    pub nodes_explored: usize,
    /// Relative MIP gap at termination: `|bound - incumbent| / max(1, |incumbent|)`.
    /// `0.0` when optimality was proven, `f64::INFINITY` when no incumbent exists.
    pub mip_gap: f64,
    /// Best dual bound proved (MILP) or the LP optimum (LP).
    pub best_bound: f64,
    /// Variables left *free* (not fixed) by the layout-preserving presolve.
    pub presolved_vars: usize,
    /// Constraints left *active* (not freed) by the layout-preserving
    /// presolve.
    pub presolved_cons: usize,
    /// Variables presolve fixed by pinning `lb == ub` in the original column
    /// space (the column itself stays in the model).
    pub cols_fixed: usize,
    /// Rows presolve proved redundant and freed (their standard-form slack is
    /// relaxed to `(-inf, +inf)`; the row itself stays in the model).
    pub rows_freed: usize,
    /// Bound tightenings derived by the per-node presolve inside the
    /// branch-and-bound tree (propagation + probing), summed over all nodes.
    pub node_tightenings: usize,
    /// Number of LU basis (re)factorizations performed.
    pub factorizations: usize,
    /// LP solves started from a warm basis (branch-and-bound children, A*
    /// re-solves).
    pub warm_starts: usize,
    /// LP solves started cold from the all-artificial phase-1 basis.
    pub cold_starts: usize,
    /// Whether any simplex pass hit its iteration limit without certifying
    /// optimality (the result then rests on an uncertified incumbent and must
    /// be reported as such, not as converged).
    pub iteration_limit_hit: bool,
    /// Set when a cooperative [`teccl_util::SolveBudget`] stopped the solve
    /// early (cancel / deadline / iteration cap). The solution then carries
    /// the best incumbent found before the stop, with `status::Feasible` at
    /// best — never `Optimal`.
    pub budget_stop: Option<BudgetExceeded>,
    /// Column-generation rounds of a Dantzig-Wolfe decomposed solve
    /// (`teccl_lp::decomp`). `0` for monolithic solves — including solves
    /// where the decomposition engaged but fell back to the monolithic path,
    /// so `dw_rounds > 0` means the answer really came out of the
    /// master/pricing loop.
    pub dw_rounds: usize,
    /// Columns in the restricted master at termination of a decomposed
    /// solve (`0` for monolithic solves, as for `dw_rounds`).
    pub dw_columns: usize,
}

impl SolveStats {
    /// Adds the counters of another solve into this one (used to aggregate
    /// across branch-and-bound nodes and A* rounds).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.simplex_iterations += other.simplex_iterations;
        self.dual_iterations += other.dual_iterations;
        self.nodes_explored += other.nodes_explored;
        self.factorizations += other.factorizations;
        self.warm_starts += other.warm_starts;
        self.cold_starts += other.cold_starts;
        self.cols_fixed += other.cols_fixed;
        self.rows_freed += other.rows_freed;
        self.node_tightenings += other.node_tightenings;
        self.iteration_limit_hit |= other.iteration_limit_hit;
        self.budget_stop = self.budget_stop.or(other.budget_stop);
        self.dw_rounds += other.dw_rounds;
        self.dw_columns += other.dw_columns;
    }
}

/// A solution to an optimization model.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Termination status.
    pub status: SolveStatus,
    /// Objective value in the *original* model's sense (NaN if no solution).
    pub objective: f64,
    /// Value of each variable, indexed by `VarId::index()`.
    pub values: Vec<f64>,
    /// Dual values (one per constraint) when available from a pure LP solve;
    /// empty for MILPs and presolve-trivial problems.
    pub duals: Vec<f64>,
    /// Solve statistics.
    pub stats: SolveStats,
    /// A simplex basis usable to warm-start a re-solve of the same (or an
    /// identically-shaped) standard form: the final basis for pure LP solves,
    /// the **root relaxation's** final basis for branch-and-bound solves (the
    /// cross-round A* carry). Presolve preserves the column layout, so the
    /// basis stays meaningful across differently-presolved solves.
    pub basis: Option<crate::basis::SimplexBasis>,
}

impl Solution {
    /// Value of a variable.
    pub fn value(&self, var: crate::model::VarId) -> f64 {
        self.values[var.index()]
    }

    /// Value of a variable rounded to the nearest integer (useful for reading
    /// binary/integer variables out of a MILP solution without `1e-9` noise).
    pub fn int_value(&self, var: crate::model::VarId) -> i64 {
        self.values[var.index()].round() as i64
    }

    /// Returns `true` if the solver produced a usable assignment.
    pub fn has_solution(&self) -> bool {
        self.status.has_solution()
    }

    /// Exports the warm-start basis as a JSON document (`None` when the solve
    /// produced no basis, e.g. presolve-trivial problems). The counterpart —
    /// feeding an imported basis back in — is
    /// [`crate::basis::SimplexBasis::from_json_value`] plus the `solve_from`
    /// family of entry points.
    pub fn basis_to_json(&self) -> Option<crate::Value> {
        self.basis.as_ref().map(|b| b.to_json_value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarId;

    #[test]
    fn status_has_solution() {
        assert!(SolveStatus::Optimal.has_solution());
        assert!(SolveStatus::Feasible.has_solution());
        assert!(!SolveStatus::Infeasible.has_solution());
        assert!(!SolveStatus::Unbounded.has_solution());
        assert!(!SolveStatus::LimitReached.has_solution());
    }

    #[test]
    fn value_accessors() {
        let sol = Solution {
            status: SolveStatus::Optimal,
            objective: 1.0,
            values: vec![0.4, 0.9999999],
            duals: vec![],
            stats: Default::default(),
            basis: None,
        };
        assert_eq!(sol.value(VarId(0)), 0.4);
        assert_eq!(sol.int_value(VarId(1)), 1);
        assert!(sol.has_solution());
    }
}
