//! Minimal sparse linear-algebra types used by the simplex implementation.
//!
//! The constraint matrix is stored column-wise ([`SparseMatrix`]) because the
//! revised simplex only ever needs `B^{-1} A_j` for single columns `A_j` and
//! reduced-cost pricing over columns. Row-wise access is not required.

/// A sparse vector stored as parallel `(index, value)` arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    /// Indices of the non-zero entries (strictly increasing).
    pub indices: Vec<usize>,
    /// Values of the non-zero entries, parallel to `indices`.
    pub values: Vec<f64>,
}

impl SparseVec {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        Self { indices: Vec::new(), values: Vec::new() }
    }

    /// Creates a sparse vector from an unsorted list of `(index, value)`
    /// pairs. Duplicate indices are summed; zero entries are dropped.
    pub fn from_pairs(pairs: &[(usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, f64)> = pairs.to_vec();
        sorted.sort_by_key(|(i, _)| *i);
        let mut out = Self::new();
        for (i, v) in sorted {
            if let Some(last) = out.indices.last().copied() {
                if last == i {
                    *out.values.last_mut().unwrap() += v;
                    continue;
                }
            }
            out.indices.push(i);
            out.values.push(v);
        }
        // Drop entries that cancelled out.
        let mut idx = Vec::with_capacity(out.indices.len());
        let mut val = Vec::with_capacity(out.values.len());
        for (i, v) in out.indices.iter().zip(out.values.iter()) {
            if v.abs() > 0.0 {
                idx.push(*i);
                val.push(*v);
            }
        }
        Self { indices: idx, values: val }
    }

    /// Number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Appends a non-zero entry. The caller must append indices in strictly
    /// increasing order.
    pub fn push(&mut self, index: usize, value: f64) {
        debug_assert!(self.indices.last().map_or(true, |&last| index > last));
        if value != 0.0 {
            self.indices.push(index);
            self.values.push(value);
        }
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            acc += v * dense[i];
        }
        acc
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Converts to a dense vector of the given length.
    pub fn to_dense(&self, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }
}

/// A column-major sparse matrix (each column is a [`SparseVec`] over rows).
#[derive(Debug, Clone, Default)]
pub struct SparseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Columns of the matrix.
    pub cols: Vec<SparseVec>,
}

impl SparseMatrix {
    /// Creates an empty matrix with `rows` rows and no columns.
    pub fn new(rows: usize) -> Self {
        Self { rows, cols: Vec::new() }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Total number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(|c| c.nnz()).sum()
    }

    /// Appends a column and returns its index.
    pub fn push_col(&mut self, col: SparseVec) -> usize {
        debug_assert!(col.indices.iter().all(|&r| r < self.rows));
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// Returns a reference to column `j`.
    pub fn col(&self, j: usize) -> &SparseVec {
        &self.cols[j]
    }

    /// Computes `y = M x` for a dense `x` (length `ncols`), returning a dense
    /// vector of length `rows`.
    pub fn mul_dense(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols());
        let mut y = vec![0.0; self.rows];
        for (j, col) in self.cols.iter().enumerate() {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, v) in col.iter() {
                y[i] += v * xj;
            }
        }
        y
    }

    /// Computes `y^T M` for a dense row vector `y` (length `rows`), returning a
    /// dense vector of length `ncols` (i.e. `M^T y`).
    pub fn transpose_mul_dense(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        self.cols.iter().map(|c| c.dot_dense(y)).collect()
    }
}

/// A dense, row-major square matrix used for the simplex basis inverse.
#[derive(Debug, Clone)]
pub struct DenseMatrix {
    /// Dimension (the matrix is `n x n`).
    pub n: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Self { n, data }
    }

    /// Returns element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Sets element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// Returns row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Computes `self * col` where `col` is a sparse column (length `n`).
    pub fn mul_sparse_col(&self, col: &SparseVec) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0; n];
        for (i, v) in col.iter() {
            // Add v * column i of self, i.e. out[r] += self[r][i] * v.
            for r in 0..n {
                out[r] += self.data[r * n + i] * v;
            }
        }
        out
    }

    /// Computes `row_vec * self` where `row_vec` has length `n`, returning a
    /// dense row vector of length `n`.
    pub fn left_mul_dense(&self, row_vec: &[f64]) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0; n];
        for (i, &w) in row_vec.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let row = &self.data[i * n..(i + 1) * n];
            for (o, r) in out.iter_mut().zip(row.iter()) {
                *o += w * r;
            }
        }
        out
    }

    /// Performs the simplex basis-inverse pivot update: given the transformed
    /// entering column `w = B^{-1} A_j` and the pivot row `r`, updates the
    /// stored inverse so it corresponds to the new basis.
    pub fn pivot_update_copy(&mut self, w: &[f64], r: usize) {
        let n = self.n;
        let pivot = w[r];
        debug_assert!(pivot.abs() > 0.0);
        let inv_pivot = 1.0 / pivot;
        // Scale pivot row first and keep a copy of it.
        for j in 0..n {
            self.data[r * n + j] *= inv_pivot;
        }
        let row_r: Vec<f64> = self.data[r * n..(r + 1) * n].to_vec();
        for i in 0..n {
            if i == r {
                continue;
            }
            let factor = w[i];
            if factor == 0.0 {
                continue;
            }
            let row_i = &mut self.data[i * n..(i + 1) * n];
            for (a, b) in row_i.iter_mut().zip(row_r.iter()) {
                *a -= factor * b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vec_from_pairs_sorts_merges_and_drops_zeros() {
        let v = SparseVec::from_pairs(&[(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0), (2, 1.0), (2, -1.0)]);
        assert_eq!(v.indices, vec![1, 3]);
        assert_eq!(v.values, vec![2.0, 3.0]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_vec_dot_dense() {
        let v = SparseVec::from_pairs(&[(0, 1.0), (2, 3.0)]);
        let d = vec![2.0, 5.0, 4.0];
        assert_eq!(v.dot_dense(&d), 2.0 + 12.0);
    }

    #[test]
    fn sparse_vec_to_dense_roundtrip() {
        let v = SparseVec::from_pairs(&[(1, 4.0), (3, -2.0)]);
        assert_eq!(v.to_dense(5), vec![0.0, 4.0, 0.0, -2.0, 0.0]);
    }

    #[test]
    fn sparse_matrix_mul_dense() {
        // M = [1 2; 0 3] stored by columns.
        let mut m = SparseMatrix::new(2);
        m.push_col(SparseVec::from_pairs(&[(0, 1.0)]));
        m.push_col(SparseVec::from_pairs(&[(0, 2.0), (1, 3.0)]));
        let y = m.mul_dense(&[1.0, 2.0]);
        assert_eq!(y, vec![5.0, 6.0]);
        let yt = m.transpose_mul_dense(&[1.0, 1.0]);
        assert_eq!(yt, vec![1.0, 5.0]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.ncols(), 2);
    }

    #[test]
    fn dense_identity_and_access() {
        let mut d = DenseMatrix::identity(3);
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 1), 0.0);
        d.set(0, 1, 5.0);
        assert_eq!(d.row(0), &[1.0, 5.0, 0.0]);
    }

    #[test]
    fn dense_mul_sparse_col_matches_dense_math() {
        // B = identity, so Binv * col == col.
        let d = DenseMatrix::identity(3);
        let col = SparseVec::from_pairs(&[(0, 2.0), (2, -1.0)]);
        assert_eq!(d.mul_sparse_col(&col), vec![2.0, 0.0, -1.0]);
    }

    #[test]
    fn dense_left_mul() {
        let mut d = DenseMatrix::identity(2);
        d.set(0, 1, 3.0);
        // y = [1, 2];  y * d = [1, 1*3 + 2*1] = [1, 5]
        assert_eq!(d.left_mul_dense(&[1.0, 2.0]), vec![1.0, 5.0]);
    }

    #[test]
    fn pivot_update_copy_matches_explicit_inverse() {
        // Start with B = I (Binv = I). Replace column 1 of the basis with
        // a = [1, 2]^T. The new basis is B' = [[1, 1], [0, 2]] whose inverse is
        // [[1, -0.5], [0, 0.5]].
        let mut binv = DenseMatrix::identity(2);
        let w = vec![1.0, 2.0]; // Binv * a with Binv = I.
        binv.pivot_update_copy(&w, 1);
        let expect = [1.0, -0.5, 0.0, 0.5];
        for (got, want) in binv.data.iter().zip(expect.iter()) {
            assert!((got - want).abs() < 1e-12, "{:?}", binv.data);
        }
    }
}
