//! Minimal sparse linear-algebra types used by the simplex implementation.
//!
//! The constraint matrix is stored column-wise ([`SparseMatrix`]) because the
//! revised simplex only ever needs `B^{-1} A_j` for single columns `A_j` and
//! reduced-cost pricing over columns. Row-wise access is not required.

/// A sparse vector stored as parallel `(index, value)` arrays.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    /// Indices of the non-zero entries (strictly increasing).
    pub indices: Vec<usize>,
    /// Values of the non-zero entries, parallel to `indices`.
    pub values: Vec<f64>,
}

impl SparseVec {
    /// Creates an empty sparse vector.
    pub fn new() -> Self {
        Self {
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a sparse vector from an unsorted list of `(index, value)`
    /// pairs. Duplicate indices are summed; zero entries are dropped.
    pub fn from_pairs(pairs: &[(usize, f64)]) -> Self {
        Self::from_vec(pairs.to_vec())
    }

    /// Like [`SparseVec::from_pairs`] but consumes the buffer: the sort, the
    /// duplicate merge, and the zero drop all happen in place, with no
    /// additional allocation.
    pub fn from_vec(mut pairs: Vec<(usize, f64)>) -> Self {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        // Merge duplicates and drop zeros in place.
        let mut write = 0usize;
        let mut read = 0usize;
        while read < pairs.len() {
            let (idx, mut sum) = pairs[read];
            read += 1;
            while read < pairs.len() && pairs[read].0 == idx {
                sum += pairs[read].1;
                read += 1;
            }
            if sum != 0.0 {
                pairs[write] = (idx, sum);
                write += 1;
            }
        }
        pairs.truncate(write);
        let mut indices = Vec::with_capacity(write);
        let mut values = Vec::with_capacity(write);
        for (i, v) in pairs {
            indices.push(i);
            values.push(v);
        }
        Self { indices, values }
    }

    /// Number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Appends a non-zero entry. The caller must append indices in strictly
    /// increasing order.
    pub fn push(&mut self, index: usize, value: f64) {
        debug_assert!(self.indices.last().is_none_or(|&last| index > last));
        if value != 0.0 {
            self.indices.push(index);
            self.values.push(value);
        }
    }

    /// Dot product with a dense vector.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            acc += v * dense[i];
        }
        acc
    }

    /// Iterates over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Converts to a dense vector of the given length.
    pub fn to_dense(&self, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }
}

/// A column-major sparse matrix (each column is a [`SparseVec`] over rows).
#[derive(Debug, Clone, Default)]
pub struct SparseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Columns of the matrix.
    pub cols: Vec<SparseVec>,
}

impl SparseMatrix {
    /// Creates an empty matrix with `rows` rows and no columns.
    pub fn new(rows: usize) -> Self {
        Self {
            rows,
            cols: Vec::new(),
        }
    }

    /// Builds an `rows x ncols` matrix from `(row, col, value)` triplets in
    /// any order. Duplicate positions are summed; explicit zeros are dropped.
    /// One pass distributes the triplets to their columns, so formulation code
    /// can emit coefficients in whatever order is natural instead of building
    /// columns pair by pair.
    pub fn from_triplets(rows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_col: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        for &(r, c, v) in triplets {
            debug_assert!(r < rows && c < ncols, "triplet ({r}, {c}) out of bounds");
            per_col[c].push((r, v));
        }
        Self {
            rows,
            cols: per_col.into_iter().map(SparseVec::from_vec).collect(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }

    /// Total number of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.cols.iter().map(|c| c.nnz()).sum()
    }

    /// Appends a column and returns its index.
    pub fn push_col(&mut self, col: SparseVec) -> usize {
        debug_assert!(col.indices.iter().all(|&r| r < self.rows));
        self.cols.push(col);
        self.cols.len() - 1
    }

    /// Returns a reference to column `j`.
    pub fn col(&self, j: usize) -> &SparseVec {
        &self.cols[j]
    }

    /// Computes `y = M x` for a dense `x` (length `ncols`), returning a dense
    /// vector of length `rows`.
    pub fn mul_dense(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols());
        let mut y = vec![0.0; self.rows];
        for (j, col) in self.cols.iter().enumerate() {
            let xj = x[j];
            if xj == 0.0 {
                continue;
            }
            for (i, v) in col.iter() {
                y[i] += v * xj;
            }
        }
        y
    }

    /// Computes `y^T M` for a dense row vector `y` (length `rows`), returning a
    /// dense vector of length `ncols` (i.e. `M^T y`).
    pub fn transpose_mul_dense(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        self.cols.iter().map(|c| c.dot_dense(y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vec_from_pairs_sorts_merges_and_drops_zeros() {
        let v =
            SparseVec::from_pairs(&[(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0), (2, 1.0), (2, -1.0)]);
        assert_eq!(v.indices, vec![1, 3]);
        assert_eq!(v.values, vec![2.0, 3.0]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn sparse_vec_dot_dense() {
        let v = SparseVec::from_pairs(&[(0, 1.0), (2, 3.0)]);
        let d = vec![2.0, 5.0, 4.0];
        assert_eq!(v.dot_dense(&d), 2.0 + 12.0);
    }

    #[test]
    fn sparse_vec_to_dense_roundtrip() {
        let v = SparseVec::from_pairs(&[(1, 4.0), (3, -2.0)]);
        assert_eq!(v.to_dense(5), vec![0.0, 4.0, 0.0, -2.0, 0.0]);
    }

    #[test]
    fn sparse_matrix_mul_dense() {
        // M = [1 2; 0 3] stored by columns.
        let mut m = SparseMatrix::new(2);
        m.push_col(SparseVec::from_pairs(&[(0, 1.0)]));
        m.push_col(SparseVec::from_pairs(&[(0, 2.0), (1, 3.0)]));
        let y = m.mul_dense(&[1.0, 2.0]);
        assert_eq!(y, vec![5.0, 6.0]);
        let yt = m.transpose_mul_dense(&[1.0, 1.0]);
        assert_eq!(yt, vec![1.0, 5.0]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.ncols(), 2);
    }
}

#[cfg(test)]
mod triplet_tests {
    use super::*;

    #[test]
    fn from_vec_merges_in_place() {
        let v = SparseVec::from_vec(vec![
            (3, 1.0),
            (1, 2.0),
            (3, 2.0),
            (5, 0.0),
            (2, 1.0),
            (2, -1.0),
        ]);
        assert_eq!(v.indices, vec![1, 3]);
        assert_eq!(v.values, vec![2.0, 3.0]);
    }

    #[test]
    fn from_triplets_builds_columns() {
        // M = [1 2; 0 3] plus a duplicate entry and an explicit zero.
        let m = SparseMatrix::from_triplets(
            2,
            2,
            &[
                (0, 1, 2.0),
                (0, 0, 0.5),
                (1, 1, 3.0),
                (0, 0, 0.5),
                (1, 0, 0.0),
            ],
        );
        assert_eq!(m.col(0).indices, vec![0]);
        assert_eq!(m.col(0).values, vec![1.0]);
        assert_eq!(m.col(1).indices, vec![0, 1]);
        assert_eq!(m.col(1).values, vec![2.0, 3.0]);
        assert_eq!(m.mul_dense(&[1.0, 2.0]), vec![5.0, 6.0]);
    }

    #[test]
    fn from_triplets_empty_columns_allowed() {
        let m = SparseMatrix::from_triplets(3, 4, &[(2, 3, 1.0)]);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.col(0).nnz(), 0);
    }
}
