//! Bounded-variable dual simplex for warm re-solves.
//!
//! Branch-and-bound tightens one variable bound per child node. The parent's
//! optimal basis stays **dual feasible** under such a change (reduced costs
//! are untouched), while the branched basic variable becomes **primal
//! infeasible**. The natural re-solve is therefore a dual simplex: pick the
//! most out-of-bounds basic variable (dual-devex row pricing), find the
//! entering column with a **bound-flipping ratio test** (the long-step rule
//! of Fourer / Maros / Koberstein: boxed non-basic columns whose reduced cost
//! would change sign are flipped to their opposite bound as long as the dual
//! slope stays positive), and pivot. No artificials, no repair phase; for a
//! single tightened bound the walk is typically a handful of pivots.
//!
//! Cost changes (A* cross-round warm starts re-weight the objective) are
//! absorbed before the dual runs: [`make_dual_feasible`] flips boxed columns
//! whose reduced cost has the wrong sign and *shifts* the cost of the rest
//! (Gill et al.'s bound/cost-shifting idea). The dual then optimizes the
//! shifted objective; since the caller always re-certifies with a true-cost
//! primal pass from the primal-feasible basis the dual leaves behind,
//! the shifts never affect correctness.
//!
//! Dual unboundedness — the ratio test running out of breakpoints with slope
//! still positive — is a Farkas certificate that the violated row cannot be
//! repaired by any setting of the non-basic variables, i.e. the LP is primal
//! infeasible. This conclusion is independent of the (possibly shifted)
//! costs; it is double-checked against exactly recomputed basic values before
//! being reported.

use crate::basis::VarStatus;
use crate::error::LpError;
use crate::simplex::{SimplexState, DTOL, FEAS_TOL, PIV_TOL, REFRESH_INTERVAL};

/// Result of a dual-simplex run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DualOutcome {
    /// The basis is primal feasible (and dual feasible for the given costs):
    /// optimal for the shifted objective.
    Optimal,
    /// The LP is primal infeasible (dual unbounded).
    Infeasible,
}

/// Tolerance below which a dual infeasibility is left for the final primal
/// cleanup pass instead of being flipped/shifted away.
const DUAL_FEAS_TOL: f64 = 1e-7;
/// Primal bound violations below this are accepted as feasible.
pub(crate) const PRIMAL_FEAS_TOL: f64 = 1e-7;

/// Makes the warm-started basis dual feasible for `cost`, modifying `cost` in
/// place where shifting is required.
///
/// * Boxed non-basic columns with a wrong-signed reduced cost are flipped to
///   their opposite bound (exact, no cost distortion).
/// * Non-boxed and free columns with a wrong-signed reduced cost get their
///   cost shifted so the reduced cost becomes zero.
///
/// Returns the reduced-cost vector for the (possibly shifted) costs, which
/// [`dual_simplex`] takes over without re-pricing. `Err` only on a numerical
/// failure in the factorization.
pub(crate) fn make_dual_feasible(
    state: &mut SimplexState,
    cost: &mut [f64],
) -> Result<Vec<f64>, LpError> {
    let ncols = state.n + state.m;

    // y = c_B B⁻ᵀ, then d_j = c_j − y·A_j per non-basic column.
    let mut y: Vec<f64> = state.basis.iter().map(|&j| cost[j]).collect();
    state.lu.btran(&mut y);

    let mut d = vec![0.0; ncols];
    let mut flipped = false;
    #[allow(clippy::needless_range_loop)] // cost is indexed and mutated by j
    for j in 0..ncols {
        if state.status[j] == VarStatus::Basic {
            continue;
        }
        let dj = state.price_col(j, cost[j], &y);
        d[j] = dj;
        if state.ub[j] - state.lb[j] < DTOL {
            continue; // fixed columns are always dual feasible
        }
        let boxed = state.lb[j].is_finite() && state.ub[j].is_finite();
        match state.status[j] {
            VarStatus::AtLower if dj < -DUAL_FEAS_TOL => {
                if boxed {
                    state.status[j] = VarStatus::AtUpper;
                    state.x[j] = state.ub[j];
                    flipped = true;
                } else {
                    cost[j] -= dj; // shift: reduced cost becomes zero
                    d[j] = 0.0;
                }
            }
            VarStatus::AtUpper if dj > DUAL_FEAS_TOL => {
                if boxed {
                    state.status[j] = VarStatus::AtLower;
                    state.x[j] = state.lb[j];
                    flipped = true;
                } else {
                    cost[j] -= dj;
                    d[j] = 0.0;
                }
            }
            VarStatus::Free if dj.abs() > DUAL_FEAS_TOL => {
                cost[j] -= dj;
                d[j] = 0.0;
            }
            _ => {}
        }
    }
    if flipped {
        state.recompute_basic_values();
    }
    Ok(d)
}

/// Runs the dual simplex until the basis is primal feasible ([`DualOutcome::
/// Optimal`]), the LP is proven primal infeasible, the iteration budget is
/// exhausted ([`LpError::IterationLimit`]), or a numerical failure occurs —
/// the caller falls back to a cold primal solve on `Err`.
pub(crate) fn dual_simplex(
    state: &mut SimplexState,
    cost: &[f64],
    d: Vec<f64>,
    max_iters: usize,
    budget: Option<&teccl_util::SolveBudget>,
) -> Result<DualOutcome, LpError> {
    let m = state.m;
    let ncols = state.n + state.m;

    // Dual-devex row reference weights (approximate ‖B⁻ᵀ e_i‖²).
    let mut row_weight = vec![1.0f64; m];
    // Reduced costs, seeded by `make_dual_feasible`, maintained incrementally
    // and recomputed at every refresh.
    let mut d = d;
    debug_assert_eq!(d.len(), ncols);
    let recompute_d = |state: &mut SimplexState, d: &mut [f64], y: &mut Vec<f64>| {
        y.clear();
        y.extend(state.basis.iter().map(|&j| cost[j]));
        state.lu.btran(y);
        for j in 0..ncols {
            d[j] = if state.status[j] == VarStatus::Basic {
                0.0
            } else {
                state.price_col(j, cost[j], y)
            };
        }
    };
    let mut y: Vec<f64> = Vec::with_capacity(m);

    let mut rho: Vec<f64> = Vec::with_capacity(m);
    let mut w: Vec<f64> = Vec::with_capacity(m);
    let mut delta_rhs: Vec<f64> = Vec::with_capacity(m);
    let mut alpha: Vec<(usize, f64)> = Vec::new(); // (col, rho·A_j) per non-basic
    let mut flips: Vec<usize> = Vec::new();

    // Anti-stall: if the total primal infeasibility stops shrinking, disable
    // bound flipping and switch to a Bland-flavoured ratio test (lowest column
    // index among the minimal ratios). The hard iteration budget backstops
    // termination; the caller then goes cold.
    let stall_limit = (m + 16).min(512);
    let mut stall_count = 0usize;
    let mut conservative = false;
    let mut last_total_infeas = f64::INFINITY;
    let mut local_iters = 0usize;

    // Batched budget accounting, same rationale as the primal loop: local
    // tally flushed every 64 pivots so parallel workers stop contending on
    // the shared counter; the cancel flag is still read every pivot.
    let mut charge_batch = teccl_util::ChargeBatcher::new(budget);

    loop {
        if local_iters > max_iters {
            let _ = charge_batch.flush();
            return Err(LpError::IterationLimit(max_iters));
        }
        // Cooperative cancellation, one check per dual pivot (mirrors the
        // primal loop). The basis is not primal feasible mid-dual, so the
        // caller surfaces this as a hard stop, not an incumbent.
        if let Err(cause) = charge_batch.charge() {
            return Err(LpError::Budget(cause));
        }

        if local_iters > 0
            && (local_iters.is_multiple_of(REFRESH_INTERVAL) || state.lu.needs_refactor())
        {
            state.refactorize()?;
            state.recompute_basic_values();
            recompute_d(state, &mut d, &mut y);
        }

        // ---- Row pricing: largest scaled infeasibility. ----
        //
        // The pricing threshold must match PRIMAL_FEAS_TOL, the threshold the
        // dual-unbounded verification uses below: a tighter one here would
        // let a sub-verification-tolerance violation be selected forever
        // (ratio test empty → verification says "noise" → re-selected), with
        // a full refactorization per spin. Violations under the threshold are
        // accepted as noise, like the EXPAND drift, and clamped at
        // extraction.
        let mut leave: Option<(usize, f64, f64)> = None; // (row, violation, score)
        let mut total_infeas = 0.0;
        #[allow(clippy::needless_range_loop)] // r indexes basis and row_weight
        for r in 0..m {
            let bvar = state.basis[r];
            let v = if state.x[bvar] < state.lb[bvar] - PRIMAL_FEAS_TOL {
                state.x[bvar] - state.lb[bvar] // negative: below lower
            } else if state.x[bvar] > state.ub[bvar] + PRIMAL_FEAS_TOL {
                state.x[bvar] - state.ub[bvar] // positive: above upper
            } else {
                continue;
            };
            total_infeas += v.abs();
            let score = v * v / row_weight[r];
            if leave.as_ref().is_none_or(|&(_, _, s)| score > s) {
                leave = Some((r, v, score));
            }
        }
        let Some((r, violation, _)) = leave else {
            let _ = charge_batch.flush();
            return Ok(DualOutcome::Optimal); // primal feasible
        };

        local_iters += 1;
        state.iterations += 1;
        state.dual_iterations += 1;

        if total_infeas < last_total_infeas - 1e-12 {
            last_total_infeas = total_infeas;
            stall_count = 0;
        } else {
            stall_count += 1;
            if stall_count > stall_limit {
                conservative = true;
            }
        }

        // σ = +1 when the leaving variable violates its upper bound, −1 when
        // it violates its lower bound; α̂_j = σ·(ρ·A_j) uniformizes the two
        // cases: an entering candidate needs α̂_j·dir_j > 0.
        let sigma = if violation > 0.0 { 1.0 } else { -1.0 };
        // Whether this iteration's numbers come from a fresh factorization
        // (no eta drift): only then is an exhausted ratio test a trustworthy
        // Farkas certificate of infeasibility.
        let fresh_factors = state.lu.eta_count() == 0;

        // ρ = B⁻ᵀ e_r, then the tableau row α̂ over the non-basic columns.
        // Columns whose coefficient is below the pivot tolerance cannot be
        // pivoted on or flipped, but their *repair capacity* still matters to
        // the infeasibility certificate: a huge-range column with a tiny
        // coefficient can close a violation the certificate would otherwise
        // declare unclosable, so that capacity is tallied separately and
        // blocks the Infeasible verdict below.
        rho.clear();
        rho.resize(m, 0.0);
        rho[r] = 1.0;
        state.lu.btran(&mut rho);
        alpha.clear();
        let mut tiny_capacity = 0.0f64;
        for j in 0..ncols {
            if state.status[j] == VarStatus::Basic || state.ub[j] - state.lb[j] < DTOL {
                continue;
            }
            let a = sigma * state.row_dot_col(j, &rho);
            if a.abs() > PIV_TOL {
                alpha.push((j, a));
            } else if a != 0.0 {
                let helps = match state.status[j] {
                    VarStatus::AtLower => a > 0.0,
                    VarStatus::AtUpper => a < 0.0,
                    VarStatus::Free => true,
                    VarStatus::Basic => false,
                };
                if helps {
                    tiny_capacity += (state.ub[j] - state.lb[j]) * a.abs(); // may be inf
                }
            }
        }

        // ---- Bound-flipping dual ratio test. ----
        //
        // Breakpoints are eligible columns ordered by |d_j / α̂_j|. Walking
        // them in ratio order, a boxed column is *flipped* to its opposite
        // bound when the dual slope (initially the primal violation) stays
        // positive after absorbing its range; the first column that cannot be
        // flipped enters the basis. Running out of breakpoints with slope
        // still positive proves primal infeasibility.
        let eligible = |st: VarStatus, a: f64| -> bool {
            match st {
                VarStatus::AtLower => a > 0.0,
                VarStatus::AtUpper => a < 0.0,
                VarStatus::Free => true,
                VarStatus::Basic => false,
            }
        };
        let mut breakpoints: Vec<(f64, usize, f64)> = alpha
            .iter()
            .filter(|&&(j, a)| eligible(state.status[j], a))
            .map(|&(j, a)| ((d[j] / a).max(0.0), j, a))
            .collect();
        if conservative {
            // Bland-flavoured: strict ratio order, ties by column index, no
            // flipping (each pivot is a plain minimal-ratio dual pivot).
            breakpoints.sort_unstable_by(|x, b| {
                x.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.1.cmp(&b.1))
            });
        } else {
            breakpoints.sort_unstable_by(|x, b| {
                x.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
        }

        let mut slope = violation.abs();
        let mut entering: Option<(usize, f64, f64)> = None; // (col, α̂, ratio)
        flips.clear();
        for &(ratio, j, a) in &breakpoints {
            let boxed = state.lb[j].is_finite() && state.ub[j].is_finite();
            let flip_cost = (state.ub[j] - state.lb[j]) * a.abs();
            if !conservative && boxed && slope - flip_cost > FEAS_TOL {
                // Long step: flip j and keep walking.
                slope -= flip_cost;
                flips.push(j);
            } else {
                entering = Some((j, a, ratio));
                break;
            }
        }

        let Some((enter, alpha_q, _ratio)) = entering else {
            // Dual unbounded → primal infeasible — but only when the slope,
            // the tableau row, and the basic values that fed the ratio test
            // came from a fresh factorization. Otherwise eta drift could have
            // inflated the violation past the total flip capacity (a stale
            // certificate); refresh everything and redo the iteration with
            // exact numbers — the next exhaustion on fresh factors (or the
            // violation dropping under tolerance) settles it.
            if fresh_factors {
                state.recompute_basic_values();
                let bvar = state.basis[r];
                let still = state.x[bvar] < state.lb[bvar] - PRIMAL_FEAS_TOL
                    || state.x[bvar] > state.ub[bvar] + PRIMAL_FEAS_TOL;
                if still {
                    // `slope` is what remains of the violation after every
                    // flippable breakpoint was consumed. If sub-pivot-
                    // tolerance columns could still close it, the certificate
                    // is numerically untrustworthy — hand the decision to a
                    // cold phase-1 solve instead of risking a false
                    // Infeasible (which would wrongly prune a B&B child).
                    let _ = charge_batch.flush();
                    if slope <= tiny_capacity {
                        return Err(LpError::Numerical(
                            "dual infeasibility certificate below pivot tolerance".into(),
                        ));
                    }
                    return Ok(DualOutcome::Infeasible);
                }
            } else {
                state.refactorize()?;
                state.recompute_basic_values();
            }
            // Noise, or stale numbers: refresh the reduced costs and retry.
            recompute_d(state, &mut d, &mut y);
            continue;
        };

        // Dual step length; clamp tiny negatives from the DUAL_FEAS_TOL slack.
        let theta_d = (d[enter] / alpha_q).max(0.0);

        // ---- Apply the bound flips (batched single FTRAN). ----
        if !flips.is_empty() {
            delta_rhs.clear();
            delta_rhs.resize(m, 0.0);
            for &j in &flips {
                let (old, new, st) = match state.status[j] {
                    VarStatus::AtLower => (state.lb[j], state.ub[j], VarStatus::AtUpper),
                    VarStatus::AtUpper => (state.ub[j], state.lb[j], VarStatus::AtLower),
                    _ => unreachable!("only bounded columns are flipped"),
                };
                let dx = new - old;
                state.status[j] = st;
                state.x[j] = new;
                if j < state.n {
                    for (i, v) in state.sf.a.col(j).iter() {
                        delta_rhs[i] += v * dx;
                    }
                } else {
                    delta_rhs[j - state.n] += state.art_sign[j - state.n] * dx;
                }
            }
            state.lu.ftran(&mut delta_rhs);
            for (i, &dv) in delta_rhs.iter().enumerate() {
                let bvar = state.basis[i];
                state.x[bvar] -= dv;
            }
        }

        // ---- Pivot: `enter` replaces the row-r basic variable. ----
        state.ftran_col_into(enter, &mut w);
        if w[r].abs() <= PIV_TOL {
            // ρ-based and FTRAN-based pivots disagree badly: refactorize and
            // retry from clean numbers; a second failure aborts to cold.
            state.refactorize()?;
            state.recompute_basic_values();
            recompute_d(state, &mut d, &mut y);
            state.ftran_col_into(enter, &mut w);
            if w[r].abs() <= PIV_TOL {
                return Err(LpError::Numerical(format!(
                    "dual pivot too small ({:.3e})",
                    w[r]
                )));
            }
        }

        let leaving = state.basis[r];
        // The leaving variable lands exactly on the bound it violated.
        let target = if violation > 0.0 {
            state.ub[leaving]
        } else {
            state.lb[leaving]
        };
        let dx_enter = (state.x[leaving] - target) / w[r];
        for (i, &wi) in w.iter().enumerate().take(m) {
            let bvar = state.basis[i];
            state.x[bvar] -= wi * dx_enter;
        }
        state.x[enter] += dx_enter;
        state.x[leaving] = target;
        state.status[leaving] = if violation > 0.0 {
            VarStatus::AtUpper
        } else {
            VarStatus::AtLower
        };
        state.basis[r] = enter;
        state.status[enter] = VarStatus::Basic;

        // Incremental reduced-cost update: d_j ← d_j − θ_d·α̂_j over the
        // non-basic columns; the leaving column picks up ∓θ_d.
        if theta_d != 0.0 {
            for &(j, a) in &alpha {
                if j != enter {
                    d[j] -= theta_d * a;
                }
            }
        }
        d[enter] = 0.0;
        d[leaving] = -sigma * theta_d;

        // Dual-devex weight update from the pivot column spike.
        let wr = w[r];
        let gamma_r = row_weight[r].max(1.0);
        for (i, &wi) in w.iter().enumerate().take(m) {
            if i == r || wi == 0.0 {
                continue;
            }
            let cand = (wi / wr) * (wi / wr) * gamma_r;
            if cand > row_weight[i] {
                row_weight[i] = cand;
            }
        }
        row_weight[r] = (gamma_r / (wr * wr)).max(1.0);

        // Fold the pivot into the eta file; on numerical trouble rebuild.
        if state.lu.update(&w, r).is_err() {
            state.refactorize()?;
            state.recompute_basic_values();
            recompute_d(state, &mut d, &mut y);
        }
    }
}
