//! Decompose-on vs monolithic regression on real ALLTOALL formulations.
//!
//! The Dantzig-Wolfe path must be invisible in the *what*: same status, same
//! objective (to 1e-6), same demand coverage — only the route to the answer
//! changes. These tests pin that on the exact degenerate-plateau instance
//! that motivated the subsystem (internal2(2) ALLTOALL at a 16 MB output
//! buffer) and, behind `--ignored`, on the bigger internal1(2) acceptance
//! row.

use teccl_collective::DemandMatrix;
use teccl_core::epochs::{epoch_duration, estimate_num_epochs};
use teccl_core::lp_form::LpFormulation;
use teccl_core::{Decompose, SolverConfig};
use teccl_topology::{NodeId, Topology};

/// Builds the copy-free ALLTOALL LP for `topo` at `output_buffer` bytes.
fn alltoall_form(topo: &Topology, output_buffer: f64, config: &SolverConfig) -> LpFormulation {
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let n = gpus.len();
    let transfer = output_buffer / (n as f64 - 1.0);
    let demand = DemandMatrix::all_to_all(topo.num_nodes(), &gpus, 1);
    let tau = epoch_duration(topo, transfer, config);
    let k = estimate_num_epochs(topo, &demand, transfer, tau);
    LpFormulation::build(topo, &demand, transfer, config, k.max(2), tau)
        .expect("ALLTOALL formulation builds")
}

fn assert_decomposed_matches_monolithic(topo: &Topology, output_buffer: f64) {
    let mono_cfg = SolverConfig::early_stop().with_decompose(Decompose::Off);
    let form = alltoall_form(topo, output_buffer, &mono_cfg);
    let mono = form.solve(&mono_cfg).expect("monolithic solve");
    assert_eq!(mono.stats.dw_rounds, 0, "Off must never decompose");

    for threads in [1usize, 4] {
        let dw_cfg = SolverConfig::early_stop()
            .with_decompose(Decompose::On)
            .with_threads(threads);
        let dw = form.solve(&dw_cfg).expect("decomposed solve");
        assert_eq!(
            dw.status, mono.status,
            "status must match at {threads} threads"
        );
        assert!(
            dw.stats.dw_rounds > 0,
            "On + multi-source LP must genuinely run the master/pricing loop"
        );
        assert!(dw.stats.dw_columns >= dw.stats.dw_rounds.min(2));
        let scale = mono.objective.abs().max(1.0);
        assert!(
            (dw.objective - mono.objective).abs() <= 1e-6 * scale,
            "objective drift at {threads} threads: dw {} vs mono {}",
            dw.objective,
            mono.objective
        );
        // The decomposed point must be a usable schedule, not just a number:
        // primal-feasible on the original model to solver tolerance.
        assert!(
            form.model.is_feasible(&dw.values, 1e-5),
            "decomposed point violates the original constraints"
        );
        assert_eq!(
            form.completion_epoch(&dw),
            form.completion_epoch(&mono),
            "both optima must finish in the same epoch"
        );
    }
}

/// The degenerate-plateau regression instance: internal2(2) ALLTOALL, 16 MB.
#[test]
fn decomposed_internal2_alltoall_matches_monolithic() {
    assert_decomposed_matches_monolithic(&teccl_topology::internal2(2), 16.0 * 1024.0 * 1024.0);
}

/// The acceptance row: internal1(2) ALLTOALL, 16 MB. Slow in debug builds —
/// run with `cargo test --release -p teccl-core --test decompose -- --ignored`.
#[test]
#[ignore = "release-build acceptance row; minutes in a debug build"]
fn decomposed_internal1_alltoall_matches_monolithic() {
    assert_decomposed_matches_monolithic(&teccl_topology::internal1(2), 16.0 * 1024.0 * 1024.0);
}

/// `Auto` is a latency knob, not a semantics knob: whatever it picks, the
/// answer equals the forced-monolithic one on a mid-size instance.
#[test]
fn auto_gate_is_semantics_free() {
    let topo = teccl_topology::internal2(2);
    let auto_cfg = SolverConfig::early_stop()
        .with_decompose(Decompose::Auto)
        .with_threads(4);
    let form = alltoall_form(&topo, 4.0 * 1024.0 * 1024.0, &auto_cfg);
    let auto = form.solve(&auto_cfg).expect("auto solve");
    let mono_cfg = SolverConfig::early_stop().with_decompose(Decompose::Off);
    let mono = form.solve(&mono_cfg).expect("monolithic solve");
    assert_eq!(auto.status, mono.status);
    let scale = mono.objective.abs().max(1.0);
    assert!((auto.objective - mono.objective).abs() <= 1e-6 * scale);
}
