//! The A*-inspired time-partitioned solver (§4.2, Appendix D).
//!
//! Instead of one MILP over the whole horizon, the problem is split into
//! *rounds* of a few epochs each. Every round solves a smaller MILP whose
//! objective rewards (a) demands satisfied inside the round and (b) chunks
//! moving closer to their destinations — the latter uses Floyd–Warshall
//! α-distances as the heuristic, which is where the A* analogy comes from.
//! State (which node holds which chunk, plus chunks still in flight because of
//! α-delays) is carried from round to round until every demand is met.
//!
//! The result is sub-optimal but dramatically cheaper than the monolithic
//! MILP, and it still supports copy (unlike the LP form).

use std::collections::HashMap;
use std::time::Instant;

use teccl_collective::DemandMatrix;
use teccl_lp::{SimplexBasis, SolveStats};
use teccl_schedule::Send;
use teccl_topology::{NodeId, Topology};

use crate::config::SolverConfig;
use crate::epochs::{delta_epochs, kappa_epochs};
use crate::error::TeCclError;
use crate::milp_form::{MilpBuildOptions, MilpFormulation};

/// Result of an A* solve.
#[derive(Debug, Clone)]
pub struct AStarOutcome {
    /// All sends, with epochs numbered globally across rounds.
    pub sends: Vec<Send>,
    /// Number of rounds used.
    pub rounds: usize,
    /// Epochs per round.
    pub epochs_per_round: usize,
    /// Total wall-clock solver time in seconds (sum over rounds).
    pub solver_time: f64,
    /// Initial holders per commodity (for pruning).
    pub initial_holders: HashMap<(usize, usize), Vec<NodeId>>,
    /// Solver statistics aggregated across every round's MILP (simplex
    /// iterations, B&B nodes, factorizations, warm/cold starts).
    pub stats: SolveStats,
    /// The last round's root-relaxation basis (the most recently published
    /// warm-start hint): a later solve of a same-shaped round — e.g. a
    /// cache-adjacent request in the schedule service — can start from it via
    /// [`solve_astar_from`].
    pub final_basis: Option<SimplexBasis>,
}

/// Solves `demand` with the A* technique. `tau` is the epoch duration.
pub fn solve_astar(
    topology: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    config: &SolverConfig,
    tau: f64,
) -> Result<AStarOutcome, TeCclError> {
    solve_astar_from(topology, demand, chunk_bytes, config, tau, None)
}

/// [`solve_astar`] with an externally supplied basis for the first round's
/// root relaxation (rounds then carry their own basis as usual when
/// `astar_warm_rounds` is on). A basis whose shape does not match the first
/// round's model silently falls back to a cold start inside the LP layer.
pub fn solve_astar_from(
    topology: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    config: &SolverConfig,
    tau: f64,
    initial_basis: Option<&SimplexBasis>,
) -> Result<AStarOutcome, TeCclError> {
    solve_astar_budgeted(
        topology,
        demand,
        chunk_bytes,
        config,
        tau,
        initial_basis,
        None,
    )
}

/// [`solve_astar_from`] under a cooperative [`teccl_util::SolveBudget`].
///
/// The budget is checked at the top of every round and inside every round's
/// MILP pivots. A* has no usable partial result — a prefix of rounds leaves
/// demands unsatisfied — so an exhausted budget always surfaces as
/// [`TeCclError::Budget`]; the serving layer degrades to a cached or
/// baseline schedule instead.
#[allow(clippy::too_many_arguments)]
pub fn solve_astar_budgeted(
    topology: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    config: &SolverConfig,
    tau: f64,
    initial_basis: Option<&SimplexBasis>,
    budget: Option<&teccl_util::SolveBudget>,
) -> Result<AStarOutcome, TeCclError> {
    if demand.is_empty() {
        return Err(TeCclError::EmptyDemand);
    }
    let start = Instant::now();

    // Effective per-link delay and the number of epochs per round: large
    // enough that a chunk sent in a round arrives at most one round later
    // (§4.2 "we set the number of epochs such that chunks do not arrive later
    // than one round in the future").
    let eff_delta: Vec<usize> = topology
        .links
        .iter()
        .map(|l| delta_epochs(l, tau) + kappa_epochs(l, chunk_bytes, tau) - 1)
        .collect();
    let max_delta = eff_delta.iter().copied().max().unwrap_or(0);
    let epochs_per_round = config
        .astar_epochs_per_round
        .unwrap_or((max_delta + 2).max(4));

    // Distance matrix for the heuristic reward (per-link cost in epochs).
    let pm = teccl_topology::floyd_warshall(topology, |l| (eff_delta[l.id.0] + 1) as f64);

    // Mutable state carried across rounds.
    let mut holders: HashMap<(usize, usize), Vec<NodeId>> = HashMap::new();
    let mut initial_holders: HashMap<(usize, usize), Vec<NodeId>> = HashMap::new();
    for (s, c, _d) in demand.iter() {
        holders.entry((s.0, c)).or_insert_with(|| vec![s]);
        initial_holders.entry((s.0, c)).or_insert_with(|| vec![s]);
    }
    let mut in_flight: Vec<(NodeId, usize, NodeId, usize)> = Vec::new();
    let mut all_sends: Vec<Send> = Vec::new();
    let mut stalls = 0usize;
    let mut stats = SolveStats::default();

    // Cross-round warm starting: built from the full demand, every round's
    // MILP has the same shape — the builder always creates the complete
    // variable set (reachability pruning is bound fixing) and presolve is
    // layout-preserving, so only bounds, right-hand sides, and objective
    // weights change between rounds and round t+1's root relaxation
    // re-optimizes dually from round t's root basis with the normal pipeline
    // (presolve on, no special cases). The no-store-and-forward buffer mode
    // derives its variable set from the round state, so it keeps the
    // per-round (remaining-demand, cold) builds.
    let warm_rounds = config.astar_warm_rounds
        && !matches!(
            config.buffer_mode,
            crate::config::BufferMode::NoStoreAndForward
        );
    let mut carried_basis: Option<SimplexBasis> = initial_basis.cloned();
    let mut final_basis: Option<SimplexBasis> = None;
    let mut cached_form: Option<MilpFormulation> = None;

    for round in 0..config.astar_max_rounds {
        // Budget check once per round (the per-pivot checks inside the
        // round's MILP cover cancellation mid-round).
        if let Some(b) = budget {
            if let Some(cause) = b.exceeded() {
                return Err(TeCclError::Budget(cause));
            }
        }
        // Remaining demands: a triple is satisfied once the destination holds
        // the chunk (or it is in flight towards it).
        let mut remaining = DemandMatrix::new(demand.num_nodes, demand.num_chunks);
        let mut remaining_count = 0usize;
        for (s, c, d) in demand.iter() {
            let held = holders.get(&(s.0, c)).is_some_and(|h| h.contains(&d));
            let flying = in_flight
                .iter()
                .any(|(fs, fc, fd, _)| *fs == s && *fc == c && *fd == d);
            if !held && !flying {
                remaining.set(s, c, d);
                remaining_count += 1;
            }
        }
        if remaining_count == 0 {
            return Ok(AStarOutcome {
                sends: all_sends,
                rounds: round,
                epochs_per_round,
                solver_time: start.elapsed().as_secs_f64(),
                initial_holders,
                stats,
                final_basis,
            });
        }

        // Terminal rewards: for every unsatisfied commodity and every GPU,
        // reward ending the round with the chunk near a destination.
        let mut terminal_rewards = Vec::new();
        for s in topology.gpus() {
            for c in 0..demand.num_chunks {
                let dests: Vec<NodeId> = remaining.destinations_of(s, c);
                if dests.is_empty() {
                    continue;
                }
                for n in topology.gpus() {
                    let dist = dests
                        .iter()
                        .map(|&d| pm.distance(n, d))
                        .fold(f64::INFINITY, f64::min);
                    if dist.is_finite() {
                        let w = config.astar_gamma / (1.0 + dist);
                        terminal_rewards.push((s, c, n, w));
                    }
                }
            }
        }

        // Extra initial holders: everything beyond the original source.
        let mut extra_initial = Vec::new();
        for (&(s, c), hs) in &holders {
            for &h in hs {
                if h.0 != s {
                    extra_initial.push((NodeId(s), c, h));
                }
            }
        }

        // Under warm rounds the model keeps every commodity, so pin the flows
        // of fully-delivered ones to zero: the layout stays identical (the
        // carried basis survives) while presolve eliminates their columns
        // from the actual solve — late rounds then cost what the shrinking
        // remaining-demand builds used to, without re-shaping the model.
        let mut frozen: Vec<(NodeId, usize)> = Vec::new();
        if warm_rounds {
            for s in topology.gpus() {
                for c in 0..demand.num_chunks {
                    if demand.chunk_in_use(s, c) && remaining.destinations_of(s, c).is_empty() {
                        frozen.push((s, c));
                    }
                }
            }
        }
        let options = MilpBuildOptions {
            relax_completion: true,
            extra_initial,
            in_flight: in_flight.clone(),
            terminal_rewards,
            hyperedge_groups: Vec::new(),
            frozen,
        };
        // Under warm rounds the model is built from the *full* demand so the
        // commodity set (and with it the layout) never changes; demands that
        // are already satisfied only contribute constant reward terms (their
        // destination buffers are initial holders, so the reads are free).
        // The identical layout also means later rounds skip the build
        // entirely: the first round's formulation is cached and only its
        // bounds / rhs / objective are rewritten in place.
        let build_demand = if warm_rounds { demand } else { &remaining };
        let reused = warm_rounds
            && cached_form
                .as_mut()
                .is_some_and(|f| f.update_round(build_demand, config, &options));
        if !reused {
            cached_form = Some(MilpFormulation::build(
                topology,
                build_demand,
                chunk_bytes,
                config,
                epochs_per_round,
                tau,
                &options,
            )?);
        }
        let form = cached_form.as_ref().expect("formulation built above");
        let sol = form.solve_budgeted(config, carried_basis.as_ref(), budget)?;
        // A budget-stopped round solution is an uncertified relaxation point
        // — its sends may be empty or wasteful and later rounds would build
        // on them. Treat it like an exhausted budget instead.
        if let Some(cause) = sol.stats.budget_stop {
            return Err(TeCclError::Budget(cause));
        }
        stats.absorb(&sol.stats);
        if warm_rounds {
            // A round that produced no basis (e.g. a presolve-trivial or
            // basis-less outcome) keeps the previous one rather than dropping
            // the warm chain for the rest of the run.
            if sol.basis.is_some() {
                carried_basis = sol.basis.clone();
            }
        } else {
            // Without warm rounds the externally supplied basis only applies
            // to the first round — later rounds are differently shaped
            // (remaining-demand builds), so retrying it would just burn a
            // failed warm attempt per round.
            carried_basis = None;
        }
        if sol.basis.is_some() {
            final_basis = sol.basis.clone();
        }
        let round_sends = form.sends(&sol);

        if round_sends.is_empty() {
            stalls += 1;
            if stalls >= 2 {
                return Err(TeCclError::AStarDidNotConverge {
                    rounds: round + 1,
                    remaining_demands: remaining_count,
                });
            }
            continue;
        }
        stalls = 0;

        // Update state and record sends with global epoch numbers.
        let mut new_in_flight: Vec<(NodeId, usize, NodeId, usize)> = Vec::new();
        // Previously in-flight chunks have now landed.
        for (s, c, n, _vis) in in_flight.drain(..) {
            let h = holders.entry((s.0, c)).or_default();
            if !h.contains(&n) {
                h.push(n);
            }
        }
        for snd in &round_sends {
            let link = topology
                .link_between(snd.from, snd.to)
                .expect("send uses a topology link");
            let arrival = snd.epoch + eff_delta[link.id.0] + 1;
            if arrival <= epochs_per_round {
                let h = holders
                    .entry((snd.chunk.source.0, snd.chunk.chunk))
                    .or_default();
                if !h.contains(&snd.to) {
                    h.push(snd.to);
                }
            } else {
                new_in_flight.push((
                    snd.chunk.source,
                    snd.chunk.chunk,
                    snd.to,
                    arrival - epochs_per_round,
                ));
            }
            all_sends.push(Send {
                chunk: snd.chunk,
                from: snd.from,
                to: snd.to,
                epoch: snd.epoch + round * epochs_per_round,
            });
        }
        in_flight = new_in_flight;
    }

    // Final check after exhausting rounds.
    let mut remaining_count = 0usize;
    for (s, c, d) in demand.iter() {
        let held = holders.get(&(s.0, c)).is_some_and(|h| h.contains(&d));
        let flying = in_flight
            .iter()
            .any(|(fs, fc, fd, _)| *fs == s && *fc == c && *fd == d);
        if !held && !flying {
            remaining_count += 1;
        }
    }
    if remaining_count == 0 {
        Ok(AStarOutcome {
            sends: all_sends,
            rounds: config.astar_max_rounds,
            epochs_per_round,
            solver_time: start.elapsed().as_secs_f64(),
            initial_holders,
            stats,
            final_basis,
        })
    } else {
        Err(TeCclError::AStarDidNotConverge {
            rounds: config.astar_max_rounds,
            remaining_demands: remaining_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use teccl_topology::{line_topology, ring_topology};

    #[test]
    fn broadcast_line_converges_over_rounds() {
        // 4-node line, small rounds so the far node needs more than one round.
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(4, &gpus, NodeId(0), 1);
        let config = SolverConfig {
            astar_epochs_per_round: Some(2),
            ..Default::default()
        };
        let out = solve_astar(&topo, &demand, 1e6, &config, 1e-3).unwrap();
        assert!(
            out.rounds >= 2,
            "expected at least 2 rounds, got {}",
            out.rounds
        );
        // Every destination received the chunk.
        for d in 1..4 {
            assert!(out
                .sends
                .iter()
                .any(|s| s.to == NodeId(d) && s.chunk.source == NodeId(0)));
        }
        // Global epochs grow across rounds.
        let max_epoch = out.sends.iter().map(|s| s.epoch).max().unwrap();
        assert!(max_epoch >= 2);
    }

    #[test]
    fn single_round_when_demand_fits() {
        let topo = ring_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let config = SolverConfig::default();
        let out = solve_astar(&topo, &demand, 1e6, &config, 1e-3).unwrap();
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn produces_valid_schedule_after_pruning() {
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let config = SolverConfig {
            astar_epochs_per_round: Some(3),
            ..Default::default()
        };
        let out = solve_astar(&topo, &demand, 1e6, &config, 1e-3).unwrap();
        let pruned =
            crate::extract::prune_sends(&out.sends, &demand, &out.initial_holders, |a, b| {
                topo.link_between(a, b)
                    .map(|l| delta_epochs(l, 1e-3))
                    .unwrap_or(0)
            });
        let schedule =
            crate::extract::schedule_from_sends("astar", 1e6, 1e-3, pruned, out.solver_time);
        let report = teccl_schedule::validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn warm_rounds_reuse_basis_and_still_satisfy_demand() {
        // With the stable layout, round 2+ must warm-start from the previous
        // round's root basis (dual re-solve) and still deliver everything.
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let config = SolverConfig {
            astar_epochs_per_round: Some(2),
            astar_warm_rounds: true,
            ..Default::default()
        };
        let out = solve_astar(&topo, &demand, 1e6, &config, 1e-3).unwrap();
        assert!(out.rounds >= 2, "need several rounds, got {}", out.rounds);
        assert!(
            out.stats.warm_starts > 0,
            "round 2+ must warm-start (stats: {:?})",
            out.stats
        );
        let cold_cfg = SolverConfig {
            astar_epochs_per_round: Some(2),
            astar_warm_rounds: false,
            ..Default::default()
        };
        let cold = solve_astar(&topo, &demand, 1e6, &cold_cfg, 1e-3).unwrap();
        // Both variants deliver every demand within the same round budget.
        assert_eq!(out.rounds, cold.rounds);
        let pruned =
            crate::extract::prune_sends(&out.sends, &demand, &out.initial_holders, |a, b| {
                topo.link_between(a, b)
                    .map(|l| delta_epochs(l, 1e-3))
                    .unwrap_or(0)
            });
        let schedule =
            crate::extract::schedule_from_sends("astar-warm", 1e6, 1e-3, pruned, out.solver_time);
        let report = teccl_schedule::validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn empty_demand_rejected() {
        let topo = line_topology(2, 1e9, 0.0);
        let demand = DemandMatrix::new(2, 1);
        assert!(matches!(
            solve_astar(&topo, &demand, 1e6, &SolverConfig::default(), 1e-3),
            Err(TeCclError::EmptyDemand)
        ));
    }
}
