//! The general MILP formulation (§3.1, Appendices A, B, C, F).
//!
//! Per-chunk 0/1 flow variables `F[s,c,(i,j),k]` track which chunk crosses
//! which link in which epoch; buffer variables `B[s,c,n,k]` (continuous —
//! their integrality follows from the flow equalities) implement
//! store-and-forward; read variables `R[s,c,d,k]` reward early delivery in the
//! objective. Copy is supported because a node may send the same chunk on
//! several outgoing links / epochs once it holds it.

use std::collections::HashMap;
use std::time::Duration;

use teccl_collective::DemandMatrix;
use teccl_lp::{ConstraintOp, MilpConfig, Model, Sense, Solution, SolveStatus, VarId};
use teccl_schedule::{ChunkId, Send};
use teccl_topology::{NodeId, Topology};

use crate::config::{BufferMode, SolverConfig, SwitchModel};
use crate::epochs::{capacity_chunks_per_epoch, delta_epochs, kappa_epochs};
use crate::error::TeCclError;
use crate::switch::HyperEdgeGroup;

/// Extra inputs for building a MILP round (used by the A* solver; the plain
/// solver uses [`MilpBuildOptions::default`]).
#[derive(Debug, Clone, Default)]
pub struct MilpBuildOptions {
    /// When `false`, the "all demands satisfied by the last epoch" constraint
    /// is dropped (A* rounds only make progress, §4.2).
    pub relax_completion: bool,
    /// Chunks already present at additional nodes at epoch 0:
    /// `(source, chunk, holder)`.
    pub extra_initial: Vec<(NodeId, usize, NodeId)>,
    /// Chunks that arrive mid-horizon (carried over from a previous A* round):
    /// `(source, chunk, node, epoch at which they join the node's buffer)`.
    pub in_flight: Vec<(NodeId, usize, NodeId, usize)>,
    /// Additional objective rewards on the *final* buffer occupancy
    /// `B[s,c,n,K]`: `(source, chunk, node, weight)` — the A* distance reward.
    pub terminal_rewards: Vec<(NodeId, usize, NodeId, f64)>,
    /// Hyper-edge groups when the topology was transformed with
    /// [`crate::switch::hyperedge_transform`].
    pub hyperedge_groups: Vec<HyperEdgeGroup>,
    /// Commodities whose flow variables are pinned to zero: `(source, chunk)`
    /// pairs whose demands are already fully satisfied (or in flight). The
    /// variables are still *created* — the layout stays identical across
    /// rounds — but their bounds are fixed, so the layout-preserving presolve
    /// eliminates them from the solve. This is how warm-started A* rounds
    /// shed the cost of already-delivered commodities without changing the
    /// model's shape.
    pub frozen: Vec<(NodeId, usize)>,
}

/// A fully built MILP instance for one collective optimization.
#[derive(Debug)]
pub struct MilpFormulation {
    /// The underlying optimization model.
    pub model: Model,
    /// Epoch duration in seconds.
    pub tau: f64,
    /// Number of epochs `K`.
    pub num_epochs: usize,
    /// Chunk size in bytes.
    pub chunk_bytes: f64,
    /// Effective per-link forwarding delay in epochs
    /// (⌈α/τ⌉ + κ − 1, Appendix F).
    pub eff_delta: Vec<usize>,
    topology: Topology,
    f_vars: HashMap<(usize, usize, usize, usize), VarId>,
    b_vars: HashMap<(usize, usize, usize, usize), VarId>,
    r_vars: HashMap<(usize, usize, usize, usize), VarId>,
    initial_holders: HashMap<(usize, usize), Vec<NodeId>>,
    /// Commodities in build order — the layout key a round update must match.
    commodities: Vec<(NodeId, usize)>,
    /// All-pairs distances in epochs (link cost `eff_delta + 1`), kept so
    /// [`MilpFormulation::update_round`] can recompute reachability pins
    /// without re-running Floyd–Warshall.
    pm: teccl_topology::PathMatrix,
    /// Flow-conservation rows whose rhs carries round state:
    /// `(constraint index, (source, chunk, node, epoch))`.
    flow_rows: Vec<(usize, (usize, usize, usize, usize))>,
    /// Buffer-evolution rows whose rhs carries round state, keyed like
    /// `flow_rows`.
    buf_rows: Vec<(usize, (usize, usize, usize, usize))>,
    built_relax_completion: bool,
    built_hyperedge_groups: usize,
}

impl MilpFormulation {
    /// Builds the MILP for `demand` on `topology` with `num_epochs` epochs of
    /// duration `tau`.
    pub fn build(
        topology: &Topology,
        demand: &DemandMatrix,
        chunk_bytes: f64,
        config: &SolverConfig,
        num_epochs: usize,
        tau: f64,
        options: &MilpBuildOptions,
    ) -> Result<Self, TeCclError> {
        if demand.is_empty() {
            return Err(TeCclError::EmptyDemand);
        }
        if demand.num_nodes != topology.num_nodes() {
            return Err(TeCclError::InvalidDemand(format!(
                "demand is over {} nodes but the topology has {}",
                demand.num_nodes,
                topology.num_nodes()
            )));
        }
        for (s, _c, d) in demand.iter() {
            if topology.is_switch(s) || topology.is_switch(d) {
                return Err(TeCclError::InvalidDemand(format!(
                    "demand endpoints must be GPUs (got {s} -> {d})"
                )));
            }
        }

        let k_max = num_epochs;
        let eff_delta: Vec<usize> = topology
            .links
            .iter()
            .map(|l| delta_epochs(l, tau) + kappa_epochs(l, chunk_bytes, tau) - 1)
            .collect();

        // Chunks in use and their initial holders.
        let mut commodities: Vec<(NodeId, usize)> = Vec::new();
        let mut initial_holders: HashMap<(usize, usize), Vec<NodeId>> = HashMap::new();
        for s in topology.gpus() {
            for c in 0..demand.num_chunks {
                if demand.chunk_in_use(s, c) {
                    commodities.push((s, c));
                    initial_holders.insert((s.0, c), vec![s]);
                }
            }
        }
        for (s, c, holder) in &options.extra_initial {
            initial_holders.entry((s.0, *c)).or_default().push(*holder);
            if !commodities.contains(&(*s, *c)) {
                commodities.push((*s, *c));
            }
        }

        // Earliest epoch a chunk can possibly be present at each node.
        // Link cost in epochs: eff_delta + 1 (one epoch to issue the send).
        // Applied below as *bound fixing* (variables before that epoch are
        // created and pinned to zero), never as variable elision, so the
        // reachability state carried into a round changes bounds but not the
        // model's layout.
        let pm = teccl_topology::floyd_warshall(topology, |l| (eff_delta[l.id.0] + 1) as f64);
        let earliest = |s: NodeId, c: usize, n: NodeId| -> usize {
            let mut best = usize::MAX;
            if let Some(holders) = initial_holders.get(&(s.0, c)) {
                for &h in holders {
                    let d = pm.distance(h, n);
                    if d.is_finite() {
                        best = best.min(d as usize);
                    }
                }
            }
            for (fs, fc, fn_, vis) in &options.in_flight {
                if fs.0 == s.0 && *fc == c {
                    let d = pm.distance(*fn_, n);
                    if d.is_finite() {
                        best = best.min(vis + d as usize);
                    }
                }
            }
            best
        };

        let init_buffer = |s: NodeId, c: usize, n: NodeId| -> f64 {
            if initial_holders
                .get(&(s.0, c))
                .is_some_and(|h| h.contains(&n))
            {
                1.0
            } else {
                0.0
            }
        };

        // Which (s, c, n) triples get buffer variables.
        let is_buffered = |s: NodeId, c: usize, n: NodeId| -> bool {
            if topology.is_switch(n) {
                return false;
            }
            match config.buffer_mode {
                BufferMode::Unlimited | BufferMode::LimitedChunks(_) => true,
                BufferMode::NoStoreAndForward => {
                    init_buffer(s, c, n) > 0.0 || demand.wants(s, c, n)
                }
            }
        };

        let mut model = Model::new(Sense::Maximize);
        let mut f_vars = HashMap::new();
        let mut b_vars = HashMap::new();
        let mut r_vars = HashMap::new();
        let mut x_vars: HashMap<(usize, usize, usize, usize), VarId> = HashMap::new();

        // ----- Variables -----------------------------------------------------
        //
        // Every commodity gets variables for every link / node / epoch: the
        // layout depends only on the topology, the demand's *shape*, and the
        // epoch count. Reachability pruning (`earliest`) is applied as bound
        // fixing (`lb == ub == 0`) rather than by skipping creation — the
        // layout-preserving presolve pins those columns, so the model solves
        // at the pruned size while two rounds built from the same demand
        // shape stay identically shaped (only bounds, right-hand sides, and
        // objective weights differ). That is what lets A* round `t+1`
        // warm-start from round `t`'s root basis with presolve on.
        let frozen: std::collections::HashSet<(usize, usize)> =
            options.frozen.iter().map(|&(s, c)| (s.0, c)).collect();
        for &(s, c) in &commodities {
            let is_frozen = frozen.contains(&(s.0, c));
            for link in &topology.links {
                let e0 = earliest(s, c, link.src);
                for k in 0..k_max {
                    let v = model.add_var(
                        format!("F[{s},{c},{}->{},{k}]", link.src, link.dst),
                        0.0,
                        1.0,
                        0.0,
                        true,
                    );
                    if is_frozen || k < e0 {
                        model.set_bounds(v, 0.0, 0.0);
                    }
                    f_vars.insert((s.0, c, link.id.0, k), v);
                }
            }
            for n in topology.nodes.iter().map(|n| n.id) {
                if !is_buffered(s, c, n) {
                    continue;
                }
                let e0 = earliest(s, c, n);
                for k in 1..=k_max {
                    let v = model.add_var(
                        format!("B[{s},{c},{n},{k}]"),
                        0.0,
                        f64::INFINITY,
                        0.0,
                        false,
                    );
                    if k < e0.max(1) {
                        model.set_bounds(v, 0.0, 0.0);
                    }
                    b_vars.insert((s.0, c, n.0, k), v);
                }
                if let BufferMode::LimitedChunks(_) = config.buffer_mode {
                    for k in 0..k_max {
                        let v = model.add_var(format!("X[{s},{c},{n},{k}]"), 0.0, 1.0, 0.0, false);
                        x_vars.insert((s.0, c, n.0, k), v);
                    }
                }
            }
        }
        for (s, c, d) in demand.iter() {
            for k in 0..k_max {
                let weight = config.chunk_priority(c) / (k as f64 + 1.0);
                let v = model.add_var(format!("R[{s},{c},{d},{k}]"), 0.0, 1.0, weight, false);
                r_vars.insert((s.0, c, d.0, k), v);
            }
        }

        // Terminal rewards (A*): weight on B[s,c,n,K].
        for (s, c, n, w) in &options.terminal_rewards {
            if let Some(&b) = b_vars.get(&(s.0, *c, n.0, k_max)) {
                let cur = model.vars[b.index()].obj;
                model.set_obj(b, cur + w);
            }
        }

        let fvar = |f: &HashMap<(usize, usize, usize, usize), VarId>,
                    s: usize,
                    c: usize,
                    l: usize,
                    k: i64|
         -> Option<VarId> {
            if k < 0 {
                None
            } else {
                f.get(&(s, c, l, k as usize)).copied()
            }
        };

        // ----- Capacity constraints (with the Appendix-F window) ------------
        for link in &topology.links {
            let cap = capacity_chunks_per_epoch(link, chunk_bytes, tau);
            let kappa = kappa_epochs(link, chunk_bytes, tau);
            for k in 0..k_max {
                let mut terms = Vec::new();
                for &(s, c) in &commodities {
                    for kk in k.saturating_sub(kappa - 1)..=k {
                        if let Some(v) = f_vars.get(&(s.0, c, link.id.0, kk)) {
                            terms.push((*v, 1.0));
                        }
                    }
                }
                if !terms.is_empty() {
                    model.add_cons(
                        format!("cap[{}->{},{k}]", link.src, link.dst),
                        &terms,
                        ConstraintOp::Le,
                        kappa as f64 * cap,
                    );
                }
            }
        }

        // ----- Flow conservation & first-epoch constraints -------------------
        let mut flow_rows: Vec<(usize, (usize, usize, usize, usize))> = Vec::new();
        for &(s, c) in &commodities {
            for node in topology.nodes.iter().map(|n| n.id) {
                let is_sw = topology.is_switch(node);
                let noncopy_switch = is_sw && config.switch_model == SwitchModel::NonCopy;

                // First epoch: can only send what is initially held.
                for link in topology.out_links(node) {
                    if let Some(&v) = f_vars.get(&(s.0, c, link.id.0, 0)) {
                        if init_buffer(s, c, node) < 0.5 {
                            model.set_bounds(v, 0.0, 0.0);
                        }
                    }
                }

                if noncopy_switch {
                    // Traditional conservation: inflow (delayed) equals outflow
                    // in the next epoch.
                    for k in 0..k_max {
                        let mut terms: Vec<(VarId, f64)> = Vec::new();
                        for inl in topology.in_links(node) {
                            let kk = k as i64 - eff_delta[inl.id.0] as i64;
                            if let Some(v) = fvar(&f_vars, s.0, c, inl.id.0, kk) {
                                terms.push((v, 1.0));
                            }
                        }
                        let mut out_terms: Vec<(VarId, f64)> = Vec::new();
                        if k + 1 < k_max {
                            for outl in topology.out_links(node) {
                                if let Some(&v) = f_vars.get(&(s.0, c, outl.id.0, k + 1)) {
                                    out_terms.push((v, -1.0));
                                }
                            }
                        }
                        if terms.is_empty() && out_terms.is_empty() {
                            continue;
                        }
                        terms.extend(out_terms);
                        model.add_cons(
                            format!("sw_flow[{s},{c},{node},{k}]"),
                            &terms,
                            ConstraintOp::Eq,
                            0.0,
                        );
                    }
                    continue;
                }

                // Copy-capable node (GPU or SHArP switch): for each outgoing
                // link, outflow at k+1 must be covered by the buffer at k plus
                // inflow arriving by the end of k.
                for k in 0..k_max.saturating_sub(1) {
                    for outl in topology.out_links(node) {
                        let out_v = match f_vars.get(&(s.0, c, outl.id.0, k + 1)) {
                            Some(v) => *v,
                            None => continue,
                        };
                        let mut terms: Vec<(VarId, f64)> = vec![(out_v, -1.0)];
                        let mut rhs = 0.0;
                        // Buffer term (or its constant value at epoch 0 /
                        // unbuffered nodes).
                        if k == 0 {
                            rhs -= init_buffer(s, c, node);
                        } else if let Some(&b) = b_vars.get(&(s.0, c, node.0, k)) {
                            terms.push((b, 1.0));
                        }
                        // In-flight constants that joined the buffer by epoch k.
                        for (fs, fc, fnode, vis) in &options.in_flight {
                            if fs.0 == s.0 && *fc == c && fnode.0 == node.0 && *vis <= k {
                                // Only counts when no buffer variable already
                                // carries it (buffered nodes absorb arrivals in
                                // the buffer-evolution constraint below).
                                if !b_vars.contains_key(&(s.0, c, node.0, k.max(1))) {
                                    rhs -= 1.0;
                                }
                            }
                        }
                        // Inflow arriving by end of epoch k.
                        for inl in topology.in_links(node) {
                            let kk = k as i64 - eff_delta[inl.id.0] as i64;
                            if let Some(v) = fvar(&f_vars, s.0, c, inl.id.0, kk) {
                                terms.push((v, 1.0));
                            }
                        }
                        let row = model.add_cons(
                            format!("flow[{s},{c},{node},{k},{}]", outl.dst),
                            &terms,
                            ConstraintOp::Ge,
                            rhs,
                        );
                        flow_rows.push((row, (s.0, c, node.0, k)));
                    }
                }
            }
        }

        // ----- Buffer evolution ----------------------------------------------
        let mut buf_rows: Vec<(usize, (usize, usize, usize, usize))> = Vec::new();
        for &(s, c) in &commodities {
            for node in topology.gpus() {
                if !is_buffered(s, c, node) {
                    continue;
                }
                for k in 1..=k_max {
                    let b_k = match b_vars.get(&(s.0, c, node.0, k)) {
                        Some(v) => *v,
                        None => continue,
                    };
                    let mut terms: Vec<(VarId, f64)> = vec![(b_k, 1.0)];
                    let mut rhs = 0.0;
                    // Previous buffer value.
                    if k == 1 {
                        rhs += init_buffer(s, c, node);
                    } else if let Some(&b_prev) = b_vars.get(&(s.0, c, node.0, k - 1)) {
                        terms.push((b_prev, -1.0));
                    }
                    // Eviction (limited buffers, Appendix B).
                    if let Some(&x) = x_vars.get(&(s.0, c, node.0, k - 1)) {
                        terms.push((x, 1.0));
                    }
                    // Arrivals: F into the node sent at k - eff_delta - 1.
                    for inl in topology.in_links(node) {
                        let kk = k as i64 - eff_delta[inl.id.0] as i64 - 1;
                        if let Some(v) = fvar(&f_vars, s.0, c, inl.id.0, kk) {
                            terms.push((v, -1.0));
                        }
                    }
                    // Carried-over in-flight arrivals joining at epoch k.
                    for (fs, fc, fnode, vis) in &options.in_flight {
                        if fs.0 == s.0 && *fc == c && fnode.0 == node.0 && *vis == k {
                            rhs += 1.0;
                        }
                    }
                    let row = model.add_cons(
                        format!("buf[{s},{c},{node},{k}]"),
                        &terms,
                        ConstraintOp::Eq,
                        rhs,
                    );
                    buf_rows.push((row, (s.0, c, node.0, k)));
                }
            }
        }

        // Per-node buffer size limit (Appendix B).
        if let BufferMode::LimitedChunks(limit) = config.buffer_mode {
            for node in topology.gpus() {
                for k in 1..=k_max {
                    let terms: Vec<(VarId, f64)> = commodities
                        .iter()
                        .filter_map(|&(s, c)| b_vars.get(&(s.0, c, node.0, k)).map(|&v| (v, 1.0)))
                        .collect();
                    if !terms.is_empty() {
                        model.add_cons(
                            format!("buflimit[{node},{k}]"),
                            &terms,
                            ConstraintOp::Le,
                            limit as f64,
                        );
                    }
                }
            }
        }

        // ----- Destination constraints ----------------------------------------
        for (s, c, d) in demand.iter() {
            for k in 0..k_max {
                let r = r_vars[&(s.0, c, d.0, k)];
                match b_vars.get(&(s.0, c, d.0, k + 1)) {
                    Some(&b) => {
                        model.add_cons(
                            format!("read[{s},{c},{d},{k}]"),
                            &[(r, 1.0), (b, -1.0)],
                            ConstraintOp::Le,
                            0.0,
                        );
                    }
                    None => {
                        // The chunk cannot be at d by epoch k+1 (or the node is
                        // not buffered there): no reward possible.
                        if init_buffer(s, c, d) < 0.5 {
                            model.set_bounds(r, 0.0, 0.0);
                        }
                    }
                }
            }
            if !options.relax_completion {
                // R[s,c,d,K-1] = D (§3.1): the demand must be met by the last
                // epoch. Expressed as `>= 1` (the bound `<= 1` already holds);
                // if the chunk structurally cannot reach `d` within K epochs
                // the variable is fixed to 0 above and presolve proves the
                // model infeasible.
                let r_last = r_vars[&(s.0, c, d.0, k_max - 1)];
                model.add_cons(
                    format!("done[{s},{c},{d}]"),
                    &[(r_last, 1.0)],
                    ConstraintOp::Ge,
                    1.0,
                );
            }
        }

        // ----- Hyper-edge constraints (Appendix C) -----------------------------
        for group in &options.hyperedge_groups {
            for k in 0..k_max {
                let mut all_terms: Vec<(VarId, f64)> = Vec::new();
                for l in &group.links {
                    for &(s, c) in &commodities {
                        if let Some(&v) = f_vars.get(&(s.0, c, l.0, k)) {
                            all_terms.push((v, 1.0));
                        }
                    }
                }
                if !all_terms.is_empty() {
                    model.add_cons(
                        format!("hyper_total[{},{k}]", group.switch_name),
                        &all_terms,
                        ConstraintOp::Le,
                        group.max_concurrent as f64,
                    );
                }
                for (node, links) in &group.out_edges_of {
                    let terms: Vec<(VarId, f64)> = links
                        .iter()
                        .flat_map(|l| {
                            commodities
                                .iter()
                                .filter_map(|&(s, c)| {
                                    f_vars.get(&(s.0, c, l.0, k)).map(|&v| (v, 1.0))
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    if !terms.is_empty() {
                        model.add_cons(
                            format!("hyper_out[{},{node},{k}]", group.switch_name),
                            &terms,
                            ConstraintOp::Le,
                            1.0,
                        );
                    }
                }
                for (node, links) in &group.in_edges_of {
                    let terms: Vec<(VarId, f64)> = links
                        .iter()
                        .flat_map(|l| {
                            commodities
                                .iter()
                                .filter_map(|&(s, c)| {
                                    f_vars.get(&(s.0, c, l.0, k)).map(|&v| (v, 1.0))
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    if !terms.is_empty() {
                        model.add_cons(
                            format!("hyper_in[{},{node},{k}]", group.switch_name),
                            &terms,
                            ConstraintOp::Le,
                            1.0,
                        );
                    }
                }
            }
        }

        let mut holders = HashMap::new();
        for (k, v) in &initial_holders {
            holders.insert(*k, v.clone());
        }

        Ok(Self {
            model,
            tau,
            num_epochs: k_max,
            chunk_bytes,
            eff_delta,
            topology: topology.clone(),
            f_vars,
            b_vars,
            r_vars,
            initial_holders: holders,
            commodities,
            pm,
            flow_rows,
            buf_rows,
            built_relax_completion: options.relax_completion,
            built_hyperedge_groups: options.hyperedge_groups.len(),
        })
    }

    /// Rewrites the round-varying parts of an already-built formulation —
    /// variable bounds (reachability / frozen / first-epoch pins), objective
    /// weights (terminal rewards), and flow/buffer right-hand sides — so the
    /// model matches what [`MilpFormulation::build`] would produce for the new
    /// `options`, without reallocating the model.
    ///
    /// This is the A* warm-round fast path: two rounds built from the same
    /// demand shape differ only in bounds, rhs and objective, and rebuilding
    /// the model from scratch (thousands of name allocations plus constraint
    /// assembly) costs milliseconds per round. The update requires the same
    /// topology, demand shape, epoch count, chunk size and config as the
    /// original build; it returns `false` — leaving the formulation in a
    /// stale but structurally intact state — when the new inputs would change
    /// the model *layout* (new commodities, a different demand shape, a
    /// buffer mode whose variable set depends on round state, a different
    /// completion/hyperedge setup). On `false` the caller must rebuild.
    pub fn update_round(
        &mut self,
        demand: &DemandMatrix,
        config: &SolverConfig,
        options: &MilpBuildOptions,
    ) -> bool {
        if demand.is_empty() || demand.num_nodes != self.topology.num_nodes() {
            return false;
        }
        // No-store-and-forward derives the buffer-variable set from the round
        // state, so its layout is not stable across rounds.
        if matches!(config.buffer_mode, BufferMode::NoStoreAndForward) {
            return false;
        }
        if options.relax_completion != self.built_relax_completion
            || options.hyperedge_groups.len() != self.built_hyperedge_groups
        {
            return false;
        }

        // The commodity list must match the built layout exactly (same
        // demand, same build order); a commodity introduced purely by
        // `extra_initial` would have added variables at build time.
        let mut commodities: Vec<(NodeId, usize)> = Vec::new();
        let mut initial_holders: HashMap<(usize, usize), Vec<NodeId>> = HashMap::new();
        for s in self.topology.gpus() {
            for c in 0..demand.num_chunks {
                if demand.chunk_in_use(s, c) {
                    commodities.push((s, c));
                    initial_holders.insert((s.0, c), vec![s]);
                }
            }
        }
        for (s, c, holder) in &options.extra_initial {
            initial_holders.entry((s.0, *c)).or_default().push(*holder);
            if !commodities.contains(&(*s, *c)) {
                return false;
            }
        }
        if commodities != self.commodities {
            return false;
        }
        // The reward variables are keyed by the demand's triples.
        let k_max = self.num_epochs;
        let mut triples = 0usize;
        for (s, c, d) in demand.iter() {
            if !self.r_vars.contains_key(&(s.0, c, d.0, 0)) {
                return false;
            }
            triples += 1;
        }
        if triples * k_max != self.r_vars.len() {
            return false;
        }

        let pm = &self.pm;
        let earliest = |s: NodeId, c: usize, n: NodeId| -> usize {
            let mut best = usize::MAX;
            if let Some(holders) = initial_holders.get(&(s.0, c)) {
                for &h in holders {
                    let d = pm.distance(h, n);
                    if d.is_finite() {
                        best = best.min(d as usize);
                    }
                }
            }
            for (fs, fc, fn_, vis) in &options.in_flight {
                if fs.0 == s.0 && *fc == c {
                    let d = pm.distance(*fn_, n);
                    if d.is_finite() {
                        best = best.min(vis + d as usize);
                    }
                }
            }
            best
        };
        let init_buffer = |s: NodeId, c: usize, n: NodeId| -> f64 {
            if initial_holders
                .get(&(s.0, c))
                .is_some_and(|h| h.contains(&n))
            {
                1.0
            } else {
                0.0
            }
        };

        // Flow bounds: frozen commodities, epochs before reachability, and
        // the first-epoch "can only send what is initially held" pin.
        let frozen: std::collections::HashSet<(usize, usize)> =
            options.frozen.iter().map(|&(s, c)| (s.0, c)).collect();
        for &(s, c) in &self.commodities {
            let is_frozen = frozen.contains(&(s.0, c));
            for link in &self.topology.links {
                let e0 = earliest(s, c, link.src);
                let first_pinned = init_buffer(s, c, link.src) < 0.5;
                for k in 0..k_max {
                    let v = self.f_vars[&(s.0, c, link.id.0, k)];
                    if is_frozen || k < e0 || (k == 0 && first_pinned) {
                        self.model.set_bounds(v, 0.0, 0.0);
                    } else {
                        self.model.set_bounds(v, 0.0, 1.0);
                    }
                }
            }
        }

        // Buffer bounds (reachability) and objective (terminal rewards only
        // ever land on `B[s,c,n,K]`, so clearing those resets the previous
        // round's rewards).
        for (&(s, c, n, k), &v) in &self.b_vars {
            if k < earliest(NodeId(s), c, NodeId(n)).max(1) {
                self.model.set_bounds(v, 0.0, 0.0);
            } else {
                self.model.set_bounds(v, 0.0, f64::INFINITY);
            }
            if k == k_max {
                self.model.set_obj(v, 0.0);
            }
        }
        for (s, c, n, w) in &options.terminal_rewards {
            if let Some(&b) = self.b_vars.get(&(s.0, *c, n.0, k_max)) {
                let cur = self.model.vars[b.index()].obj;
                self.model.set_obj(b, cur + w);
            }
        }

        // Read bounds: a destination with no buffer variable at k+1 can only
        // collect the reward when it already holds the chunk.
        for (&(s, c, d, k), &r) in &self.r_vars {
            if !self.b_vars.contains_key(&(s, c, d, k + 1))
                && init_buffer(NodeId(s), c, NodeId(d)) < 0.5
            {
                self.model.set_bounds(r, 0.0, 0.0);
            } else {
                self.model.set_bounds(r, 0.0, 1.0);
            }
        }

        // Right-hand sides carrying initial-buffer and in-flight constants.
        for &(row, (s, c, n, k)) in &self.flow_rows {
            let mut rhs = 0.0;
            if k == 0 {
                rhs -= init_buffer(NodeId(s), c, NodeId(n));
            }
            for (fs, fc, fnode, vis) in &options.in_flight {
                if fs.0 == s
                    && *fc == c
                    && fnode.0 == n
                    && *vis <= k
                    && !self.b_vars.contains_key(&(s, c, n, k.max(1)))
                {
                    rhs -= 1.0;
                }
            }
            self.model.cons[row].rhs = rhs;
        }
        for &(row, (s, c, n, k)) in &self.buf_rows {
            let mut rhs = 0.0;
            if k == 1 {
                rhs += init_buffer(NodeId(s), c, NodeId(n));
            }
            for (fs, fc, fnode, vis) in &options.in_flight {
                if fs.0 == s && *fc == c && fnode.0 == n && *vis == k {
                    rhs += 1.0;
                }
            }
            self.model.cons[row].rhs = rhs;
        }

        self.initial_holders = initial_holders;
        true
    }

    /// Solves the MILP with the limits taken from `config`.
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution, TeCclError> {
        self.solve_from(config, None)
    }

    /// Solves the MILP, optionally warm-starting the root relaxation from the
    /// basis of a previous round's identically-shaped formulation. The build
    /// always produces the same layout for the same demand shape and the
    /// presolve is layout-preserving, so warm solves run the normal pipeline
    /// (presolve on); a mismatched basis silently degrades to a cold root.
    pub fn solve_from(
        &self,
        config: &SolverConfig,
        warm: Option<&teccl_lp::SimplexBasis>,
    ) -> Result<Solution, TeCclError> {
        self.solve_budgeted(config, warm, None)
    }

    /// [`MilpFormulation::solve_from`] under a cooperative [`SolveBudget`]:
    /// pivots, dual re-solves and branch-and-bound nodes all check it, and
    /// an exhausted budget returns the best incumbent found so far with
    /// `stats.budget_stop` set (or [`TeCclError::Budget`] if none exists).
    pub fn solve_budgeted(
        &self,
        config: &SolverConfig,
        warm: Option<&teccl_lp::SimplexBasis>,
        budget: Option<&teccl_util::SolveBudget>,
    ) -> Result<Solution, TeCclError> {
        let milp_config = MilpConfig {
            rel_gap: config.early_stop_gap.unwrap_or(1e-6),
            time_limit: config.time_limit.or(Some(Duration::from_secs(600))),
            warm_start: config.warm_start,
            budget: budget.cloned(),
            threads: config.threads.max(1),
            ..Default::default()
        };
        let sol = self.model.solve_with_warm(&milp_config, warm)?;
        match sol.status {
            SolveStatus::Infeasible => Err(TeCclError::InfeasibleWithEpochs(self.num_epochs)),
            SolveStatus::Unbounded => Err(TeCclError::NoSolution),
            SolveStatus::LimitReached => Err(TeCclError::NoSolution),
            _ => Ok(sol),
        }
    }

    /// Extracts the raw (unpruned) sends from a solution.
    pub fn sends(&self, solution: &Solution) -> Vec<Send> {
        let mut out = Vec::new();
        for (&(s, c, l, k), &var) in &self.f_vars {
            if solution.values[var.index()] > 0.5 {
                let link = &self.topology.links[l];
                out.push(Send {
                    chunk: ChunkId::new(NodeId(s), c),
                    from: link.src,
                    to: link.dst,
                    epoch: k,
                });
            }
        }
        out.sort_by_key(|s| (s.epoch, s.from, s.to, s.chunk.source, s.chunk.chunk));
        out
    }

    /// Value of a read variable (for tests / metrics).
    pub fn read_value(&self, solution: &Solution, s: NodeId, c: usize, d: NodeId, k: usize) -> f64 {
        self.r_vars
            .get(&(s.0, c, d.0, k))
            .map(|v| solution.values[v.index()])
            .unwrap_or(0.0)
    }

    /// Value of a buffer variable (0 if not modeled).
    pub fn buffer_value(
        &self,
        solution: &Solution,
        s: NodeId,
        c: usize,
        n: NodeId,
        k: usize,
    ) -> f64 {
        self.b_vars
            .get(&(s.0, c, n.0, k))
            .map(|v| solution.values[v.index()])
            .unwrap_or(0.0)
    }

    /// The effective forwarding delay (in epochs) of the link `from -> to`.
    pub fn delta_of(&self, from: NodeId, to: NodeId) -> usize {
        self.topology
            .link_between(from, to)
            .map(|l| self.eff_delta[l.id.0])
            .unwrap_or(0)
    }

    /// The initial holders of each `(source, chunk)` commodity.
    pub fn initial_holders(&self) -> &HashMap<(usize, usize), Vec<NodeId>> {
        &self.initial_holders
    }

    /// Number of integer variables (model-size metric for the scale tables).
    pub fn num_integer_vars(&self) -> usize {
        self.model.num_integer_vars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use teccl_topology::{fig1c, line_topology};

    fn broadcast_on_line() -> (Topology, DemandMatrix) {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        (topo, demand)
    }

    #[test]
    fn broadcast_line_solves_and_relays() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default();
        let tau = 1e-3; // 1 MB chunks over 1 GB/s
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            4,
            tau,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        let sol = form.solve(&config).unwrap();
        let sends = form.sends(&sol);
        // The chunk must cross 0->1 and 1->2 (it may also be copied elsewhere,
        // pruning happens later).
        assert!(sends
            .iter()
            .any(|s| s.from == NodeId(0) && s.to == NodeId(1)));
        assert!(sends
            .iter()
            .any(|s| s.from == NodeId(1) && s.to == NodeId(2)));
        // Both destinations eventually read the chunk.
        assert!(form.read_value(&sol, NodeId(0), 0, NodeId(1), 3) > 0.5);
        assert!(form.read_value(&sol, NodeId(0), 0, NodeId(2), 3) > 0.5);
    }

    #[test]
    fn infeasible_with_too_few_epochs() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default();
        // One epoch cannot deliver over two hops.
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            1,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        assert!(matches!(
            form.solve(&config),
            Err(TeCclError::InfeasibleWithEpochs(1))
        ));
    }

    #[test]
    fn copy_allows_single_upstream_send() {
        // Figure 1c: with copy the source sends once to the relay, which fans
        // out to the three destinations.
        let topo = fig1c(1e9);
        let mut demand = DemandMatrix::new(5, 1);
        for d in 2..5 {
            demand.set(NodeId(0), 0, NodeId(d));
        }
        let config = SolverConfig::default();
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            4,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        let sol = form.solve(&config).unwrap();
        let sends = form.sends(&sol);
        let upstream = sends
            .iter()
            .filter(|s| s.from == NodeId(0) && s.to == NodeId(1))
            .count();
        // Copy means the s->h link only needs to carry the chunk once (the raw
        // solution may contain additional no-op sends — those are removed by
        // the reverse-DFS pruning in `extract`, tested there).
        assert!(upstream >= 1);
        // And the relay fans it out to all three destinations.
        for d in 2..5 {
            assert!(sends
                .iter()
                .any(|s| s.from == NodeId(1) && s.to == NodeId(d)));
        }
    }

    #[test]
    fn empty_demand_rejected() {
        let topo = line_topology(2, 1e9, 0.0);
        let demand = DemandMatrix::new(2, 1);
        let err = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &SolverConfig::default(),
            2,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, TeCclError::EmptyDemand);
    }

    #[test]
    fn demand_on_switch_rejected() {
        let mut topo = Topology::new("sw");
        let a = topo.add_gpu("a", 0);
        let sw = topo.add_switch("s", 0);
        let b = topo.add_gpu("b", 0);
        topo.add_bilink(a, sw, 1e9, 0.0);
        topo.add_bilink(sw, b, 1e9, 0.0);
        let mut demand = DemandMatrix::new(3, 1);
        demand.set(a, 0, sw);
        let err = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &SolverConfig::default(),
            3,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TeCclError::InvalidDemand(_)));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let topo = line_topology(3, 1e9, 0.0);
        let demand = DemandMatrix::all_gather(4, &[NodeId(0), NodeId(1)], 1);
        let err = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &SolverConfig::default(),
            3,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TeCclError::InvalidDemand(_)));
    }

    #[test]
    fn alpha_delay_enforced_in_schedule_epochs() {
        // A 2-hop path where the first link has alpha of 2 epochs: the second
        // hop cannot be scheduled before epoch 3.
        let mut topo = Topology::new("delay");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        let c = topo.add_gpu("c", 0);
        topo.add_bilink(a, b, 1e9, 2e-3); // 2 epochs of alpha at tau=1ms
        topo.add_bilink(b, c, 1e9, 0.0);
        let mut demand = DemandMatrix::new(3, 1);
        demand.set(a, 0, c);
        let config = SolverConfig::default();
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            6,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        let sol = form.solve(&config).unwrap();
        let sends = form.sends(&sol);
        let hop2 = sends.iter().find(|s| s.from == b && s.to == c).unwrap();
        let hop1 = sends.iter().find(|s| s.from == a && s.to == b).unwrap();
        assert!(
            hop2.epoch >= hop1.epoch + 3,
            "second hop at {} after first at {}",
            hop2.epoch,
            hop1.epoch
        );
    }

    #[test]
    fn buffer_values_follow_flows() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default();
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            4,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        let sol = form.solve(&config).unwrap();
        // The middle node eventually buffers the chunk (it demands it).
        assert!(form.buffer_value(&sol, NodeId(0), 0, NodeId(1), 4) > 0.5);
        // The source always holds its own chunk implicitly (not modeled as a
        // variable at epoch 0); buffer_value returns 0 for missing vars.
        assert_eq!(form.buffer_value(&sol, NodeId(0), 0, NodeId(2), 0), 0.0);
    }

    #[test]
    fn limited_buffer_mode_builds_and_solves() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default().with_buffer_mode(BufferMode::LimitedChunks(1));
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            5,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        let sol = form.solve(&config).unwrap();
        assert!(form.read_value(&sol, NodeId(0), 0, NodeId(2), 4) > 0.5);
    }

    #[test]
    fn no_store_and_forward_mode_still_relays() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default().with_buffer_mode(BufferMode::NoStoreAndForward);
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            4,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        // Node 1 demands the chunk itself, so it may hold it; node 2 receives
        // it relayed. The problem stays feasible.
        let sol = form.solve(&config).unwrap();
        assert!(form.read_value(&sol, NodeId(0), 0, NodeId(2), 3) > 0.5);
    }

    #[test]
    fn relaxed_completion_never_infeasible() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default();
        let options = MilpBuildOptions {
            relax_completion: true,
            ..Default::default()
        };
        // Even with 1 epoch (not enough to deliver), the relaxed model solves.
        let form = MilpFormulation::build(&topo, &demand, 1e6, &config, 1, 1e-3, &options).unwrap();
        let sol = form.solve(&config).unwrap();
        assert!(sol.has_solution());
    }

    #[test]
    fn extra_initial_holder_shortens_path() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default();
        // Node 1 already holds the chunk: node 2 can be served in one hop.
        let options = MilpBuildOptions {
            extra_initial: vec![(NodeId(0), 0, NodeId(1))],
            ..Default::default()
        };
        let form = MilpFormulation::build(&topo, &demand, 1e6, &config, 2, 1e-3, &options).unwrap();
        let sol = form.solve(&config).unwrap();
        assert!(form.read_value(&sol, NodeId(0), 0, NodeId(2), 1) > 0.5);
    }

    #[test]
    fn unreachable_epochs_are_bound_fixed_not_elided() {
        let (topo, demand) = broadcast_on_line();
        let config = SolverConfig::default();
        let form = MilpFormulation::build(
            &topo,
            &demand,
            1e6,
            &config,
            4,
            1e-3,
            &MilpBuildOptions::default(),
        )
        .unwrap();
        // Every link gets a flow variable for every epoch (stable layout)…
        assert_eq!(
            form.num_integer_vars(),
            topo.links.len() * 4,
            "full F-variable layout"
        );
        // …but flows a chunk cannot reach in time are pinned to zero: links
        // leaving a node other than the source are unusable at epoch 0.
        let source_out: Vec<usize> = topo.out_links(NodeId(0)).map(|l| l.id.0).collect();
        let mut fixed = 0usize;
        for link in &topo.links {
            let v = form.f_vars[&(0, 0, link.id.0, 0)];
            let def = &form.model.vars[v.index()];
            if source_out.contains(&link.id.0) {
                assert_eq!((def.lb, def.ub), (0.0, 1.0), "source link stays free");
            } else {
                assert_eq!((def.lb, def.ub), (0.0, 0.0), "unreachable flow pinned");
                fixed += 1;
            }
        }
        assert!(fixed > 0);
    }

    /// The A* warm-round fast path: rewriting bounds / rhs / objective in
    /// place must produce *exactly* the model a fresh build would — element
    /// for element — for round state exercising every updated site (extra
    /// holders, in-flight arrivals, terminal rewards, frozen commodities).
    #[test]
    fn update_round_matches_fresh_build() {
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(4, &gpus, NodeId(0), 2);
        let config = SolverConfig::default();
        let round0 = MilpBuildOptions {
            relax_completion: true,
            terminal_rewards: vec![(NodeId(0), 0, NodeId(1), 0.25)],
            ..Default::default()
        };
        let round1 = MilpBuildOptions {
            relax_completion: true,
            extra_initial: vec![(NodeId(0), 0, NodeId(1))],
            in_flight: vec![(NodeId(0), 1, NodeId(1), 1)],
            terminal_rewards: vec![
                (NodeId(0), 0, NodeId(2), 0.5),
                (NodeId(0), 1, NodeId(3), 0.125),
            ],
            frozen: vec![(NodeId(0), 1)],
            ..Default::default()
        };
        let mut updated =
            MilpFormulation::build(&topo, &demand, 1e6, &config, 4, 1e-3, &round0).unwrap();
        assert!(updated.update_round(&demand, &config, &round1));
        let fresh = MilpFormulation::build(&topo, &demand, 1e6, &config, 4, 1e-3, &round1).unwrap();
        assert_eq!(updated.model.num_vars(), fresh.model.num_vars());
        assert_eq!(updated.model.num_cons(), fresh.model.num_cons());
        for (u, f) in updated.model.vars.iter().zip(&fresh.model.vars) {
            assert_eq!(u.name, f.name);
            assert_eq!(
                (u.lb, u.ub, u.obj),
                (f.lb, f.ub, f.obj),
                "var {} differs after in-place update",
                u.name
            );
        }
        for (u, f) in updated.model.cons.iter().zip(&fresh.model.cons) {
            assert_eq!(u.name, f.name);
            assert_eq!(
                u.rhs, f.rhs,
                "cons {} rhs differs after in-place update",
                u.name
            );
        }
        let a = updated.solve(&config).unwrap();
        let b = fresh.solve(&config).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
        // Layout-changing inputs refuse the in-place path instead of
        // corrupting the cached model.
        let wider = DemandMatrix::broadcast(4, &gpus, NodeId(0), 3);
        assert!(!updated.update_round(&wider, &config, &round1));
        let completing = MilpBuildOptions {
            relax_completion: false,
            ..round1.clone()
        };
        assert!(!updated.update_round(&demand, &config, &completing));
    }
}
