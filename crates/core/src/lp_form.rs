//! The linear-program formulation for copy-free demands (§4.1, Appendix A).
//!
//! When no chunk is wanted by more than one destination (ALLTOALL, SCATTER,
//! GATHER, REDUCESCATTER), copy is useless and the per-chunk integer variables
//! of the MILP can be replaced by per-source *aggregate* continuous flows
//! `F[s,(i,j),k]` (in chunk units). The result is an LP — polynomial-time
//! solvable and far more scalable — that is still optimal for these demands.

use std::collections::HashMap;
use std::time::Duration;

use teccl_collective::DemandMatrix;
use teccl_lp::{ConstraintOp, MilpConfig, Model, Sense, Solution, SolveStatus, VarId};
use teccl_schedule::Send;
use teccl_topology::{NodeId, Topology};

use crate::config::{BufferMode, SolverConfig};
use crate::epochs::{capacity_chunks_per_epoch, delta_epochs};
use crate::error::TeCclError;
use crate::extract::decompose_source_flow;

/// A fully built LP instance for one copy-free collective optimization.
#[derive(Debug)]
pub struct LpFormulation {
    /// The underlying optimization model (continuous variables only).
    pub model: Model,
    /// Epoch duration in seconds.
    pub tau: f64,
    /// Number of epochs `K`.
    pub num_epochs: usize,
    /// Chunk size in bytes.
    pub chunk_bytes: f64,
    topology: Topology,
    /// `F[s, link, k]` variables.
    f_vars: HashMap<(usize, usize, usize), VarId>,
    /// `B[s, node, k]` variables (k in 0..=K).
    b_vars: HashMap<(usize, usize, usize), VarId>,
    /// `r[s, d, k]` read variables.
    r_vars: HashMap<(usize, usize, usize), VarId>,
    /// Per-link α-delay in epochs.
    delta: Vec<usize>,
    /// Block label of each variable for the Dantzig-Wolfe path: every
    /// `F`/`B`/`r` column belongs to exactly one commodity source, so the
    /// builder records the source's index (in its active-source list) as the
    /// variable is added. Length is exactly `model.num_vars()`.
    var_block: Vec<usize>,
}

impl LpFormulation {
    /// Builds the LP for `demand` on `topology` with `num_epochs` epochs of
    /// duration `tau`.
    ///
    /// The demand should not benefit from copy; if it does, the LP still
    /// produces a valid schedule but a sub-optimal one (each copy is sent
    /// separately from the source), which is exactly the "without copy"
    /// baseline of Figure 7.
    pub fn build(
        topology: &Topology,
        demand: &DemandMatrix,
        chunk_bytes: f64,
        config: &SolverConfig,
        num_epochs: usize,
        tau: f64,
    ) -> Result<Self, TeCclError> {
        if demand.is_empty() {
            return Err(TeCclError::EmptyDemand);
        }
        if demand.num_nodes != topology.num_nodes() {
            return Err(TeCclError::InvalidDemand(format!(
                "demand is over {} nodes but the topology has {}",
                demand.num_nodes,
                topology.num_nodes()
            )));
        }
        for (s, _c, d) in demand.iter() {
            if topology.is_switch(s) || topology.is_switch(d) {
                return Err(TeCclError::InvalidDemand(format!(
                    "demand endpoints must be GPUs (got {s} -> {d})"
                )));
            }
        }

        let k_max = num_epochs;
        let delta: Vec<usize> = topology
            .links
            .iter()
            .map(|l| delta_epochs(l, tau))
            .collect();

        // Sources with anything to send.
        let sources: Vec<NodeId> = topology
            .gpus()
            .filter(|&s| demand.demand_of_source(s) > 0)
            .collect();

        let mut model = Model::new(Sense::Maximize);
        let mut f_vars = HashMap::new();
        let mut b_vars = HashMap::new();
        let mut r_vars = HashMap::new();
        let mut var_block = Vec::new();

        // ----- Variables ------------------------------------------------------
        for (block, &s) in sources.iter().enumerate() {
            for link in &topology.links {
                for k in 0..k_max {
                    let v = model.add_var(
                        format!("F[{s},{}->{},{k}]", link.src, link.dst),
                        0.0,
                        f64::INFINITY,
                        0.0,
                        false,
                    );
                    f_vars.insert((s.0, link.id.0, k), v);
                    var_block.push(block);
                }
            }
            for n in topology.gpus() {
                // Buffer limit of zero relay buffering under NoStoreAndForward:
                // only the source itself and destinations keep buffers.
                let buffered = match config.buffer_mode {
                    BufferMode::Unlimited | BufferMode::LimitedChunks(_) => true,
                    BufferMode::NoStoreAndForward => {
                        n == s || (0..demand.num_chunks).any(|c| demand.wants(s, c, n))
                    }
                };
                if !buffered {
                    continue;
                }
                for k in 0..=k_max {
                    let v =
                        model.add_var(format!("B[{s},{n},{k}]"), 0.0, f64::INFINITY, 0.0, false);
                    b_vars.insert((s.0, n.0, k), v);
                    var_block.push(block);
                }
            }
            for d in topology.gpus() {
                let wanted = (0..demand.num_chunks)
                    .filter(|&c| demand.wants(s, c, d))
                    .count();
                if wanted == 0 {
                    continue;
                }
                for k in 0..k_max {
                    let weight = 1.0 / (k as f64 + 1.0);
                    let v =
                        model.add_var(format!("r[{s},{d},{k}]"), 0.0, f64::INFINITY, weight, false);
                    r_vars.insert((s.0, d.0, k), v);
                    var_block.push(block);
                }
            }
        }

        let fv = |f: &HashMap<(usize, usize, usize), VarId>,
                  s: usize,
                  l: usize,
                  k: i64|
         -> Option<VarId> {
            if k < 0 || k as usize >= k_max {
                None
            } else {
                f.get(&(s, l, k as usize)).copied()
            }
        };

        // ----- Initialization (Appendix A, first epoch) -------------------------
        for &s in &sources {
            let total: f64 = demand.demand_of_source(s) as f64;
            for n in topology.gpus() {
                if n == s {
                    // B[s,s,0] + Σ_out F[s,(s,j),0] = total demand from s.
                    let mut terms: Vec<(VarId, f64)> = vec![(b_vars[&(s.0, s.0, 0)], 1.0)];
                    for outl in topology.out_links(s) {
                        terms.push((f_vars[&(s.0, outl.id.0, 0)], 1.0));
                    }
                    model.add_cons(format!("init[{s}]"), &terms, ConstraintOp::Eq, total);
                } else {
                    // Nothing anywhere else at epoch 0.
                    if let Some(&b) = b_vars.get(&(s.0, n.0, 0)) {
                        model.set_bounds(b, 0.0, 0.0);
                    }
                    for outl in topology.out_links(n) {
                        model.set_bounds(f_vars[&(s.0, outl.id.0, 0)], 0.0, 0.0);
                    }
                }
            }
            for sw in topology.switches() {
                for outl in topology.out_links(sw) {
                    model.set_bounds(f_vars[&(s.0, outl.id.0, 0)], 0.0, 0.0);
                }
            }
        }

        // ----- Flow conservation (GPUs) -----------------------------------------
        for &s in &sources {
            for n in topology.gpus() {
                for k in 0..k_max {
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    // Inflow arriving by end of epoch k.
                    for inl in topology.in_links(n) {
                        if let Some(v) =
                            fv(&f_vars, s.0, inl.id.0, k as i64 - delta[inl.id.0] as i64)
                        {
                            terms.push((v, 1.0));
                        }
                    }
                    // + B[s,n,k]
                    if let Some(&b) = b_vars.get(&(s.0, n.0, k)) {
                        terms.push((b, 1.0));
                    }
                    // = B[s,n,k+1] + r[s,n,k] + Σ_out F[s,(n,j),k+1]
                    if let Some(&b) = b_vars.get(&(s.0, n.0, k + 1)) {
                        terms.push((b, -1.0));
                    }
                    if let Some(&r) = r_vars.get(&(s.0, n.0, k)) {
                        terms.push((r, -1.0));
                    }
                    if k + 1 < k_max {
                        for outl in topology.out_links(n) {
                            terms.push((f_vars[&(s.0, outl.id.0, k + 1)], -1.0));
                        }
                    }
                    if terms.is_empty() {
                        continue;
                    }
                    model.add_cons(format!("flow[{s},{n},{k}]"), &terms, ConstraintOp::Eq, 0.0);
                }
            }
            // Switches: no buffer, no consumption.
            for sw in topology.switches() {
                for k in 0..k_max {
                    let mut terms: Vec<(VarId, f64)> = Vec::new();
                    for inl in topology.in_links(sw) {
                        if let Some(v) =
                            fv(&f_vars, s.0, inl.id.0, k as i64 - delta[inl.id.0] as i64)
                        {
                            terms.push((v, 1.0));
                        }
                    }
                    if k + 1 < k_max {
                        for outl in topology.out_links(sw) {
                            terms.push((f_vars[&(s.0, outl.id.0, k + 1)], -1.0));
                        }
                    }
                    if terms.is_empty() {
                        continue;
                    }
                    model.add_cons(
                        format!("swflow[{s},{sw},{k}]"),
                        &terms,
                        ConstraintOp::Eq,
                        0.0,
                    );
                }
            }
        }

        // ----- Capacity -----------------------------------------------------------
        for link in &topology.links {
            let cap = capacity_chunks_per_epoch(link, chunk_bytes, tau);
            for k in 0..k_max {
                let terms: Vec<(VarId, f64)> = sources
                    .iter()
                    .filter_map(|s| f_vars.get(&(s.0, link.id.0, k)).map(|&v| (v, 1.0)))
                    .collect();
                if !terms.is_empty() {
                    model.add_cons(
                        format!("cap[{}->{},{k}]", link.src, link.dst),
                        &terms,
                        ConstraintOp::Le,
                        cap,
                    );
                }
            }
        }

        // ----- Buffer size limit (Appendix B, LP variant) --------------------------
        if let BufferMode::LimitedChunks(limit) = config.buffer_mode {
            for n in topology.gpus() {
                for k in 1..=k_max {
                    let terms: Vec<(VarId, f64)> = sources
                        .iter()
                        .filter_map(|s| b_vars.get(&(s.0, n.0, k)).map(|&v| (v, 1.0)))
                        .collect();
                    if !terms.is_empty() {
                        model.add_cons(
                            format!("buflimit[{n},{k}]"),
                            &terms,
                            ConstraintOp::Le,
                            limit as f64,
                        );
                    }
                }
            }
        }

        // ----- Destination totals ---------------------------------------------------
        for &s in &sources {
            for d in topology.gpus() {
                let wanted = (0..demand.num_chunks)
                    .filter(|&c| demand.wants(s, c, d))
                    .count();
                if wanted == 0 {
                    continue;
                }
                let terms: Vec<(VarId, f64)> =
                    (0..k_max).map(|k| (r_vars[&(s.0, d.0, k)], 1.0)).collect();
                model.add_cons(
                    format!("dst[{s},{d}]"),
                    &terms,
                    ConstraintOp::Eq,
                    wanted as f64,
                );
            }
        }

        Ok(Self {
            model,
            tau,
            num_epochs: k_max,
            chunk_bytes,
            topology: topology.clone(),
            f_vars,
            b_vars,
            r_vars,
            delta,
            var_block,
        })
    }

    /// The block-angular split of this formulation: one block per active
    /// commodity source, coupled by the capacity (and buffer-limit) rows.
    pub fn block_structure(&self) -> Result<teccl_lp::BlockStructure, TeCclError> {
        Ok(teccl_lp::BlockStructure::infer(
            &self.model,
            &self.var_block,
        )?)
    }

    /// Solves the LP.
    pub fn solve(&self, config: &SolverConfig) -> Result<Solution, TeCclError> {
        self.solve_from(config, None)
    }

    /// Solves the LP, optionally warm-starting from the basis of a previous
    /// solve of an identically-shaped formulation (the schedule service's
    /// cache-adjacent warm start). A mismatched or stale basis silently
    /// degrades to a cold start.
    pub fn solve_from(
        &self,
        config: &SolverConfig,
        warm: Option<&teccl_lp::SimplexBasis>,
    ) -> Result<Solution, TeCclError> {
        self.solve_budgeted(config, warm, None)
    }

    /// [`LpFormulation::solve_from`] under a cooperative [`SolveBudget`]:
    /// the solver checks the budget at every pivot and, when it trips, hands
    /// back the best primal-feasible point found so far (a usable if
    /// suboptimal schedule) with `stats.budget_stop` set.
    pub fn solve_budgeted(
        &self,
        config: &SolverConfig,
        warm: Option<&teccl_lp::SimplexBasis>,
        budget: Option<&teccl_util::SolveBudget>,
    ) -> Result<Solution, TeCclError> {
        let structure = self.block_structure()?;
        let threads = config.threads.max(1);
        let sol = if teccl_lp::should_decompose(
            config.decompose,
            &self.model,
            &structure,
            threads,
            budget,
        ) {
            // Dantzig-Wolfe path: one pricing subproblem per commodity
            // source, priced in parallel. Uncertifiable runs fall back to
            // the monolithic simplex *inside* the call, so the status map
            // below sees the same contract either way.
            let opts = teccl_lp::DecompOptions {
                threads,
                ..Default::default()
            };
            teccl_lp::solve_decomposed(&self.model, &structure, budget, &opts)?
        } else {
            let milp_config = MilpConfig {
                time_limit: config.time_limit.or(Some(Duration::from_secs(600))),
                warm_start: config.warm_start,
                budget: budget.cloned(),
                threads,
                ..Default::default()
            };
            self.model.solve_with_warm(&milp_config, warm)?
        };
        match sol.status {
            SolveStatus::Infeasible => Err(TeCclError::InfeasibleWithEpochs(self.num_epochs)),
            SolveStatus::Unbounded => Err(TeCclError::NoSolution),
            SolveStatus::LimitReached => Err(TeCclError::NoSolution),
            _ => Ok(sol),
        }
    }

    /// The last epoch in which any destination still reads data — the LP's
    /// completion epoch (transfer time ≈ `(completion_epoch + 1) * tau` plus
    /// the trailing α of the final hops).
    pub fn completion_epoch(&self, solution: &Solution) -> usize {
        self.r_vars
            .iter()
            .filter(|(_, &v)| solution.values[v.index()] > 1e-6)
            .map(|(&(_, _, k), _)| k)
            .max()
            .unwrap_or(0)
    }

    /// Amount of source-`s` data node `d` reads in epoch `k` (chunk units).
    pub fn read_value(&self, solution: &Solution, s: NodeId, d: NodeId, k: usize) -> f64 {
        self.r_vars
            .get(&(s.0, d.0, k))
            .map(|v| solution.values[v.index()])
            .unwrap_or(0.0)
    }

    /// Flow of source-`s` data on a link at epoch `k` (chunk units).
    pub fn flow_value(&self, solution: &Solution, s: NodeId, link: usize, k: usize) -> f64 {
        self.f_vars
            .get(&(s.0, link, k))
            .map(|v| solution.values[v.index()])
            .unwrap_or(0.0)
    }

    /// Amount of source-`s` data buffered at node `n` at the start of epoch
    /// `k` (chunk units).
    pub fn buffer_value(&self, solution: &Solution, s: NodeId, n: NodeId, k: usize) -> f64 {
        self.b_vars
            .get(&(s.0, n.0, k))
            .map(|v| solution.values[v.index()])
            .unwrap_or(0.0)
    }

    /// Converts the LP rate solution into an executable per-chunk schedule by
    /// decomposing each source's time-expanded flow into paths and assigning
    /// each demanded chunk to one path (§4.1's rate-to-schedule step).
    pub fn extract_sends(&self, solution: &Solution, demand: &DemandMatrix) -> Vec<Send> {
        let link_endpoints: HashMap<usize, (NodeId, NodeId)> = self
            .topology
            .links
            .iter()
            .map(|l| (l.id.0, (l.src, l.dst)))
            .collect();
        let mut all = Vec::new();
        for s in self.topology.gpus() {
            if demand.demand_of_source(s) == 0 {
                continue;
            }
            let mut flows: HashMap<(usize, usize), f64> = HashMap::new();
            for link in &self.topology.links {
                for k in 0..self.num_epochs {
                    let v = self.flow_value(solution, s, link.id.0, k);
                    if v > 1e-6 {
                        flows.insert((link.id.0, k), v);
                    }
                }
            }
            let mut chunks_for_dest: HashMap<NodeId, Vec<usize>> = HashMap::new();
            for d in self.topology.gpus() {
                let chunks: Vec<usize> = (0..demand.num_chunks)
                    .filter(|&c| demand.wants(s, c, d))
                    .collect();
                if !chunks.is_empty() {
                    chunks_for_dest.insert(d, chunks);
                }
            }
            let delta = self.delta.clone();
            all.extend(decompose_source_flow(
                s,
                &chunks_for_dest,
                &flows,
                &link_endpoints,
                |l| delta[l],
                self.num_epochs,
            ));
        }
        all
    }

    /// The α-delay (in epochs) of the link `from -> to`.
    pub fn delta_of(&self, from: NodeId, to: NodeId) -> usize {
        self.topology
            .link_between(from, to)
            .map(|l| self.delta[l.id.0])
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use teccl_topology::{clique_topology, line_topology, ring_topology};

    #[test]
    fn alltoall_on_clique_single_epoch_exchange() {
        // 3 GPUs fully connected, 1 chunk per pair, epoch fits one chunk: the
        // LP should finish in the first epoch (every pair has a direct link).
        let topo = clique_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(3, &gpus, 1);
        let config = SolverConfig::default();
        let form = LpFormulation::build(&topo, &demand, 1e6, &config, 3, 1e-3).unwrap();
        let sol = form.solve(&config).unwrap();
        assert_eq!(form.completion_epoch(&sol), 0);
        // Each destination reads exactly its demand.
        let total_read: f64 = (0..3)
            .flat_map(|s| (0..3).map(move |d| (s, d)))
            .filter(|(s, d)| s != d)
            .map(|(s, d)| {
                (0..3)
                    .map(|k| form.read_value(&sol, NodeId(s), NodeId(d), k))
                    .sum::<f64>()
            })
            .sum();
        assert!((total_read - 6.0).abs() < 1e-5);
    }

    #[test]
    fn scatter_on_line_respects_bottleneck() {
        // Node 0 scatters 1 chunk to each of nodes 1, 2, 3 on a line: the
        // 0->1 link must carry 3 chunks, so at 1 chunk/epoch the last chunk
        // leaves the source at epoch 2 and the completion epoch cannot be
        // earlier than 2.
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::scatter(4, &gpus, NodeId(0), 1);
        let config = SolverConfig::default();
        let form = LpFormulation::build(&topo, &demand, 1e6, &config, 8, 1e-3).unwrap();
        let sol = form.solve(&config).unwrap();
        let completion = form.completion_epoch(&sol);
        assert!(completion >= 2, "completion epoch {completion} too early");
        // All 3 chunks eventually read.
        let total: f64 = (1..4)
            .map(|d| {
                (0..8)
                    .map(|k| form.read_value(&sol, NodeId(0), NodeId(d), k))
                    .sum::<f64>()
            })
            .sum();
        assert!((total - 3.0).abs() < 1e-5);
    }

    #[test]
    fn infeasible_with_too_few_epochs() {
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::scatter(4, &gpus, NodeId(0), 2);
        let config = SolverConfig::default();
        // 6 chunks over a 1-chunk/epoch bottleneck cannot finish in 2 epochs.
        let form = LpFormulation::build(&topo, &demand, 1e6, &config, 2, 1e-3).unwrap();
        assert!(matches!(
            form.solve(&config),
            Err(TeCclError::InfeasibleWithEpochs(2))
        ));
    }

    #[test]
    fn extract_sends_cover_all_demands() {
        let topo = ring_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(4, &gpus, 1);
        let config = SolverConfig::default();
        let form = LpFormulation::build(&topo, &demand, 1e6, &config, 8, 1e-3).unwrap();
        let sol = form.solve(&config).unwrap();
        let sends = form.extract_sends(&sol, &demand);
        // Each of the 12 (s, d) pairs gets at least one send of its chunk; the
        // chunk of a far destination needs several hops.
        assert!(sends.len() >= 12);
        // Validate causality and demand satisfaction with the schedule checker.
        let schedule = crate::extract::schedule_from_sends("lp", 1e6, 1e-3, sends, 0.0);
        let report = teccl_schedule::validate(&topo, &demand, &schedule, false);
        assert!(report.is_valid(), "{:?}", report.errors);
    }

    #[test]
    fn lp_handles_alpha_delay_in_flow_conservation() {
        // Two nodes joined by a high-alpha link: delivery cannot be read
        // before the delay has passed.
        let mut topo = Topology::new("slowpair");
        let a = topo.add_gpu("a", 0);
        let b = topo.add_gpu("b", 0);
        topo.add_bilink(a, b, 1e9, 3e-3); // 3 epochs of alpha at tau = 1 ms
        let mut demand = DemandMatrix::new(2, 1);
        demand.set(a, 0, b);
        let config = SolverConfig::default();
        let form = LpFormulation::build(&topo, &demand, 1e6, &config, 8, 1e-3).unwrap();
        let sol = form.solve(&config).unwrap();
        // Earliest read: sent at epoch 0, arrives by end of epoch 3, readable
        // at epoch 3 (flow conservation consumes arrivals in the same epoch).
        let completion = form.completion_epoch(&sol);
        assert!(completion >= 3, "completion {completion}");
    }

    #[test]
    fn empty_demand_rejected() {
        let topo = line_topology(2, 1e9, 0.0);
        let demand = DemandMatrix::new(2, 1);
        let err = LpFormulation::build(&topo, &demand, 1e6, &SolverConfig::default(), 2, 1e-3)
            .unwrap_err();
        assert_eq!(err, TeCclError::EmptyDemand);
    }

    #[test]
    fn limited_buffers_build_and_solve() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(3, &gpus, 1);
        let config = SolverConfig::default().with_buffer_mode(BufferMode::LimitedChunks(2));
        let form = LpFormulation::build(&topo, &demand, 1e6, &config, 6, 1e-3).unwrap();
        let sol = form.solve(&config).unwrap();
        assert!(sol.has_solution());
    }
}
