//! Solution → schedule extraction and post-processing.
//!
//! The MILP objective does not penalize flows that satisfy no demand (§3.1:
//! penalizing them slows the solver), so the raw solution may contain
//! "silly" sends. [`prune_sends`] implements the paper's reverse-DFS
//! post-processing: starting from every destination, it walks backwards
//! through the flows until the demand is accounted for, and drops everything
//! that was never needed. The pass runs in `O(|sends|·|N|)`.

use std::collections::{HashMap, HashSet};

use teccl_collective::DemandMatrix;
use teccl_schedule::{ChunkId, Schedule, Send};
use teccl_topology::NodeId;

/// Prunes unneeded sends from a raw solution (the reverse-DFS of §3.1).
///
/// * `sends` — the raw sends (any order),
/// * `demand` — the demand matrix to account for,
/// * `initial_holders` — which nodes hold each `(source, chunk)` at epoch 0,
/// * `delta_of(from, to)` — the effective forwarding delay of a link in
///   epochs: a chunk sent at epoch `k` can be forwarded by the receiver from
///   epoch `k + delta + 1` on.
pub fn prune_sends<F>(
    sends: &[Send],
    demand: &DemandMatrix,
    initial_holders: &HashMap<(usize, usize), Vec<NodeId>>,
    delta_of: F,
) -> Vec<Send>
where
    F: Fn(NodeId, NodeId) -> usize,
{
    // Group sends per commodity.
    let mut per_chunk: HashMap<ChunkId, Vec<&Send>> = HashMap::new();
    for s in sends {
        per_chunk.entry(s.chunk).or_default().push(s);
    }
    let mut keep: HashSet<(ChunkId, NodeId, NodeId, usize)> = HashSet::new();

    for (chunk, chunk_sends) in &per_chunk {
        let holders: HashSet<NodeId> = initial_holders
            .get(&(chunk.source.0, chunk.chunk))
            .map(|v| v.iter().copied().collect())
            .unwrap_or_else(|| [chunk.source].into_iter().collect());

        // Destinations that demand this chunk.
        let dests: Vec<NodeId> = demand.destinations_of(chunk.source, chunk.chunk);
        for dest in dests {
            if holders.contains(&dest) {
                continue;
            }
            // Walk backwards: find the earliest-arriving send into `node` no
            // later than `by_epoch`, mark it, and recurse on its origin.
            let mut stack: Vec<(NodeId, usize)> = vec![(dest, usize::MAX)];
            let mut visited: HashSet<(NodeId, usize)> = HashSet::new();
            while let Some((node, by_epoch)) = stack.pop() {
                if holders.contains(&node) || !visited.insert((node, by_epoch)) {
                    continue;
                }
                // Candidate sends into `node` whose chunk is usable by `by_epoch`.
                let mut best: Option<(&Send, usize)> = None;
                for snd in chunk_sends.iter().filter(|s| s.to == node) {
                    let avail = snd.epoch + delta_of(snd.from, snd.to) + 1;
                    if by_epoch != usize::MAX && avail > by_epoch {
                        continue;
                    }
                    match best {
                        Some((_, best_avail)) if avail >= best_avail => {}
                        _ => best = Some((snd, avail)),
                    }
                }
                if let Some((snd, _)) = best {
                    keep.insert((snd.chunk, snd.from, snd.to, snd.epoch));
                    // The sender must have had the chunk by the send epoch.
                    stack.push((snd.from, snd.epoch));
                }
            }
        }
    }

    sends
        .iter()
        .filter(|s| keep.contains(&(s.chunk, s.from, s.to, s.epoch)))
        .copied()
        .collect()
}

/// Assembles a [`Schedule`] from (already pruned or raw) sends.
pub fn schedule_from_sends(
    name: impl Into<String>,
    chunk_bytes: f64,
    epoch_duration: f64,
    sends: Vec<Send>,
    solver_time: f64,
) -> Schedule {
    let mut schedule = Schedule::new(name, chunk_bytes);
    schedule.epoch_duration = epoch_duration;
    schedule.solver_time = solver_time;
    for s in sends {
        schedule.push(s.chunk, s.from, s.to, s.epoch);
    }
    schedule
}

/// Decomposes an LP rate solution into per-chunk paths (the "straight-forward
/// algorithm" §4.1 refers to): the time-expanded flow of each source is peeled
/// into unit-chunk paths from the source to each destination, greedily
/// following the largest remaining flow, and each demanded chunk is assigned
/// to one path.
///
/// The LP optimum is frequently **fractional** on the big shared-capacity
/// instances (a chunk's worth of flow split 0.25/0.75 across parallel
/// routes), while sends are atomic whole chunks. Two properties keep the
/// extraction total anyway:
///
/// * peeled capacity is floored at zero, so a chunk routed over a
///   fractional sliver cannot drive edges negative and poison the support
///   that later destinations need (the old unit decrement did exactly that —
///   on internal1(2) ALLTOALL 16 MB it disconnected entire sources);
/// * if the *remaining* support no longer reaches a destination, the chunk is
///   routed over the **original** support instead. Flow conservation on the
///   time-expanded DAG guarantees such a causally consistent path exists for
///   every demanded chunk, so every demand is always scheduled. The cost is a
///   bounded per-epoch capacity overshoot (under one chunk per fractional
///   path), which the α–β simulator prices as queueing rather than the
///   schedule silently dropping demands.
///
/// `flows[(link, k)]` is the per-source flow (in chunks) on a link at epoch
/// `k`. Returns the sends for this source's chunks.
pub fn decompose_source_flow(
    source: NodeId,
    chunks_for_dest: &HashMap<NodeId, Vec<usize>>,
    flows: &HashMap<(usize, usize), f64>,
    link_endpoints: &HashMap<usize, (NodeId, NodeId)>,
    delta_of: impl Fn(usize) -> usize,
    num_epochs: usize,
) -> Vec<Send> {
    let mut remaining = flows.clone();
    let mut sends = Vec::new();

    // Destinations sorted for determinism.
    let mut dests: Vec<&NodeId> = chunks_for_dest.keys().collect();
    dests.sort();

    for &dest in dests {
        for &chunk in &chunks_for_dest[&dest] {
            // Greedy DFS from (source, epoch 0) to `dest` over positive
            // remaining flows; fall back to the original support so a
            // fractional optimum can never leave a demand unscheduled.
            let path = find_path(
                source,
                dest,
                &remaining,
                link_endpoints,
                &delta_of,
                num_epochs,
            )
            .or_else(|| find_path(source, dest, flows, link_endpoints, &delta_of, num_epochs));
            if let Some(path) = path {
                for &(link, k) in &path {
                    let (from, to) = link_endpoints[&link];
                    sends.push(Send {
                        chunk: ChunkId::new(source, chunk),
                        from,
                        to,
                        epoch: k,
                    });
                    if let Some(f) = remaining.get_mut(&(link, k)) {
                        *f = (*f - 1.0).max(0.0);
                    }
                }
            }
        }
    }
    sends
}

/// Finds a causally consistent path of positive-flow link-epochs from `source`
/// to `dest`. Returns the `(link, epoch)` hops in order.
fn find_path(
    source: NodeId,
    dest: NodeId,
    flows: &HashMap<(usize, usize), f64>,
    link_endpoints: &HashMap<usize, (NodeId, NodeId)>,
    delta_of: &impl Fn(usize) -> usize,
    num_epochs: usize,
) -> Option<Vec<(usize, usize)>> {
    // DFS over (node, earliest epoch the chunk is available there, hops so far).
    type DfsEntry = (NodeId, usize, Vec<(usize, usize)>);
    let mut stack: Vec<DfsEntry> = vec![(source, 0, Vec::new())];
    let mut visited: HashSet<(NodeId, usize)> = HashSet::new();
    while let Some((node, avail, path)) = stack.pop() {
        if node == dest {
            return Some(path);
        }
        if !visited.insert((node, avail)) {
            continue;
        }
        // Candidate outgoing link-epochs with remaining flow, preferring
        // larger flow then earlier epochs (deterministic order).
        let mut candidates: Vec<(usize, usize, f64)> = flows
            .iter()
            .filter(|(&(link, k), &f)| {
                f > 1e-6
                    && k >= avail
                    && k < num_epochs
                    && link_endpoints
                        .get(&link)
                        .is_some_and(|(from, _)| *from == node)
            })
            .map(|(&(link, k), &f)| (link, k, f))
            .collect();
        candidates.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap()
                .then(a.1.cmp(&b.1))
                .then(a.0.cmp(&b.0))
        });
        // Push in reverse so the best candidate is explored first.
        for (link, k, _) in candidates.into_iter().rev() {
            let (_, to) = link_endpoints[&link];
            let next_avail = k + delta_of(link) + 1;
            let mut new_path = path.clone();
            new_path.push((link, k));
            stack.push((to, next_avail, new_path));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn holders_of(src: NodeId, chunk: usize) -> HashMap<(usize, usize), Vec<NodeId>> {
        let mut m = HashMap::new();
        m.insert((src.0, chunk), vec![src]);
        m
    }

    #[test]
    fn prune_removes_useless_sends() {
        // Broadcast 0 -> {1, 2} over a line; the raw solution also pointlessly
        // bounces the chunk back 1 -> 0.
        let gpus: Vec<NodeId> = (0..3).map(NodeId).collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let ch = ChunkId::new(NodeId(0), 0);
        let sends = vec![
            Send {
                chunk: ch,
                from: NodeId(0),
                to: NodeId(1),
                epoch: 0,
            },
            Send {
                chunk: ch,
                from: NodeId(1),
                to: NodeId(2),
                epoch: 1,
            },
            Send {
                chunk: ch,
                from: NodeId(1),
                to: NodeId(0),
                epoch: 1,
            }, // useless
        ];
        let pruned = prune_sends(&sends, &demand, &holders_of(NodeId(0), 0), |_, _| 0);
        assert_eq!(pruned.len(), 2);
        assert!(!pruned.iter().any(|s| s.to == NodeId(0)));
    }

    #[test]
    fn prune_keeps_earliest_arrival_per_destination() {
        // Destination 2 receives the chunk twice; only the earlier delivery is
        // needed (and its upstream chain).
        let mut demand = DemandMatrix::new(4, 1);
        demand.set(NodeId(0), 0, NodeId(2));
        let ch = ChunkId::new(NodeId(0), 0);
        let sends = vec![
            Send {
                chunk: ch,
                from: NodeId(0),
                to: NodeId(2),
                epoch: 0,
            },
            Send {
                chunk: ch,
                from: NodeId(0),
                to: NodeId(1),
                epoch: 0,
            },
            Send {
                chunk: ch,
                from: NodeId(1),
                to: NodeId(2),
                epoch: 1,
            },
        ];
        let pruned = prune_sends(&sends, &demand, &holders_of(NodeId(0), 0), |_, _| 0);
        assert_eq!(pruned.len(), 1);
        assert_eq!(pruned[0].from, NodeId(0));
        assert_eq!(pruned[0].to, NodeId(2));
    }

    #[test]
    fn prune_respects_causality_of_upstream_chain() {
        // The only send into the destination happens at epoch 0, but its
        // sender (node 1) receives the chunk only at epoch 2 — that delivery
        // chain is impossible, so nothing from it may be kept blindly; the
        // direct epoch-3 delivery must be chosen instead.
        let mut demand = DemandMatrix::new(3, 1);
        demand.set(NodeId(0), 0, NodeId(2));
        let ch = ChunkId::new(NodeId(0), 0);
        let sends = vec![
            Send {
                chunk: ch,
                from: NodeId(1),
                to: NodeId(2),
                epoch: 0,
            }, // impossible support
            Send {
                chunk: ch,
                from: NodeId(0),
                to: NodeId(1),
                epoch: 2,
            },
            Send {
                chunk: ch,
                from: NodeId(0),
                to: NodeId(2),
                epoch: 3,
            },
        ];
        let pruned = prune_sends(&sends, &demand, &holders_of(NodeId(0), 0), |_, _| 0);
        // The impossible chain keeps the 1->2 send (it is the earliest arrival
        // into 2) and then needs a send into 1 by epoch 0 — none exists, so the
        // chain dies there; the destination is still covered by either chain.
        // The key property: every kept send's chunk is traceable to the source.
        for s in &pruned {
            assert!(s.chunk.source == NodeId(0));
        }
        assert!(!pruned.is_empty());
    }

    #[test]
    fn prune_handles_multiple_chunks_independently() {
        let gpus: Vec<NodeId> = (0..2).map(NodeId).collect();
        let demand = DemandMatrix::all_gather(2, &gpus, 2);
        let mut holders = HashMap::new();
        for c in 0..2 {
            holders.insert((0, c), vec![NodeId(0)]);
            holders.insert((1, c), vec![NodeId(1)]);
        }
        let sends = vec![
            Send {
                chunk: ChunkId::new(NodeId(0), 0),
                from: NodeId(0),
                to: NodeId(1),
                epoch: 0,
            },
            Send {
                chunk: ChunkId::new(NodeId(0), 1),
                from: NodeId(0),
                to: NodeId(1),
                epoch: 1,
            },
            Send {
                chunk: ChunkId::new(NodeId(1), 0),
                from: NodeId(1),
                to: NodeId(0),
                epoch: 0,
            },
            Send {
                chunk: ChunkId::new(NodeId(1), 1),
                from: NodeId(1),
                to: NodeId(0),
                epoch: 1,
            },
        ];
        let pruned = prune_sends(&sends, &demand, &holders, |_, _| 0);
        assert_eq!(pruned.len(), 4); // everything is needed
    }

    #[test]
    fn schedule_from_sends_sets_metadata() {
        let sends = vec![Send {
            chunk: ChunkId::new(NodeId(0), 0),
            from: NodeId(0),
            to: NodeId(1),
            epoch: 2,
        }];
        let sch = schedule_from_sends("te-ccl", 1e6, 1e-3, sends, 0.25);
        assert_eq!(sch.num_sends(), 1);
        assert_eq!(sch.num_epochs, 3);
        assert_eq!(sch.epoch_duration, 1e-3);
        assert_eq!(sch.solver_time, 0.25);
    }

    #[test]
    fn decompose_simple_two_hop_flow() {
        // Source 0 -> dest 2 via node 1, one chunk. Links: 0: (0->1), 1: (1->2).
        let mut link_endpoints = HashMap::new();
        link_endpoints.insert(0usize, (NodeId(0), NodeId(1)));
        link_endpoints.insert(1usize, (NodeId(1), NodeId(2)));
        let mut flows = HashMap::new();
        flows.insert((0usize, 0usize), 1.0);
        flows.insert((1usize, 1usize), 1.0);
        let mut chunks_for_dest = HashMap::new();
        chunks_for_dest.insert(NodeId(2), vec![0usize]);
        let sends = decompose_source_flow(
            NodeId(0),
            &chunks_for_dest,
            &flows,
            &link_endpoints,
            |_| 0,
            4,
        );
        assert_eq!(sends.len(), 2);
        assert_eq!(sends[0].from, NodeId(0));
        assert_eq!(sends[1].to, NodeId(2));
        assert!(sends[0].epoch < sends[1].epoch);
    }

    #[test]
    fn decompose_splits_two_chunks_over_parallel_paths() {
        // Two chunks to dest 3 over two disjoint relays (1 and 2).
        let mut link_endpoints = HashMap::new();
        link_endpoints.insert(0usize, (NodeId(0), NodeId(1)));
        link_endpoints.insert(1usize, (NodeId(1), NodeId(3)));
        link_endpoints.insert(2usize, (NodeId(0), NodeId(2)));
        link_endpoints.insert(3usize, (NodeId(2), NodeId(3)));
        let mut flows = HashMap::new();
        for (l, k) in [(0, 0), (1, 1), (2, 0), (3, 1)] {
            flows.insert((l as usize, k as usize), 1.0);
        }
        let mut chunks_for_dest = HashMap::new();
        chunks_for_dest.insert(NodeId(3), vec![0usize, 1usize]);
        let sends = decompose_source_flow(
            NodeId(0),
            &chunks_for_dest,
            &flows,
            &link_endpoints,
            |_| 0,
            4,
        );
        assert_eq!(sends.len(), 4);
        // Both relays are used (each path has capacity for one chunk).
        let via1 = sends.iter().any(|s| s.to == NodeId(1));
        let via2 = sends.iter().any(|s| s.to == NodeId(2));
        assert!(via1 && via2);
    }

    #[test]
    fn decompose_fractional_support_schedules_every_chunk() {
        // A fractional optimum: one chunk's worth of flow to each destination
        // split 0.5/0.5 over a shared trunk and private relays. The unit
        // decrement exhausts the remaining support before the last chunks are
        // routed; the support fallback must still schedule every demand (the
        // old code silently dropped them — internal1(2) ALLTOALL 16 MB lost
        // 4 demands this way once the LP actually converged).
        let mut link_endpoints = HashMap::new();
        link_endpoints.insert(0usize, (NodeId(0), NodeId(2))); // trunk
        link_endpoints.insert(1usize, (NodeId(2), NodeId(1)));
        link_endpoints.insert(2usize, (NodeId(2), NodeId(3)));
        link_endpoints.insert(3usize, (NodeId(0), NodeId(1))); // direct d1
        link_endpoints.insert(4usize, (NodeId(0), NodeId(3))); // direct d3
        let mut flows = HashMap::new();
        flows.insert((0usize, 0usize), 1.0); // trunk carries half of each
        flows.insert((1usize, 1usize), 0.5);
        flows.insert((2usize, 1usize), 0.5);
        flows.insert((3usize, 0usize), 0.5);
        flows.insert((4usize, 0usize), 0.5);
        let mut chunks_for_dest = HashMap::new();
        chunks_for_dest.insert(NodeId(1), vec![0usize]);
        chunks_for_dest.insert(NodeId(3), vec![1usize]);
        let sends = decompose_source_flow(
            NodeId(0),
            &chunks_for_dest,
            &flows,
            &link_endpoints,
            |_| 0,
            4,
        );
        // Both chunks must arrive, whatever mix of trunk/direct was used.
        for (dest, chunk) in [(NodeId(1), 0usize), (NodeId(3), 1usize)] {
            assert!(
                sends
                    .iter()
                    .any(|s| s.to == dest && s.chunk == ChunkId::new(NodeId(0), chunk)),
                "chunk {chunk} never delivered to {dest}: {sends:?}"
            );
        }
        // And no flow may have been driven negative.
        // (The decrement floors at zero; verified indirectly: re-running the
        // decomposition on the same inputs is deterministic and total.)
        let again = decompose_source_flow(
            NodeId(0),
            &chunks_for_dest,
            &flows,
            &link_endpoints,
            |_| 0,
            4,
        );
        assert_eq!(sends, again);
    }

    #[test]
    fn decompose_falls_back_to_support_when_remaining_is_exhausted() {
        // Two chunks forced through a single one-chunk-wide path: the second
        // chunk finds no *remaining* support and must be routed over the
        // original support instead of being dropped.
        let mut link_endpoints = HashMap::new();
        link_endpoints.insert(0usize, (NodeId(0), NodeId(1)));
        link_endpoints.insert(1usize, (NodeId(1), NodeId(2)));
        let mut flows = HashMap::new();
        flows.insert((0usize, 0usize), 1.0);
        flows.insert((1usize, 1usize), 1.0);
        let mut chunks_for_dest = HashMap::new();
        chunks_for_dest.insert(NodeId(2), vec![0usize, 1usize]);
        let sends = decompose_source_flow(
            NodeId(0),
            &chunks_for_dest,
            &flows,
            &link_endpoints,
            |_| 0,
            4,
        );
        for chunk in [0usize, 1usize] {
            assert!(
                sends
                    .iter()
                    .any(|s| s.to == NodeId(2) && s.chunk == ChunkId::new(NodeId(0), chunk)),
                "chunk {chunk} dropped: {sends:?}"
            );
        }
    }

    #[test]
    fn decompose_returns_empty_when_no_flow() {
        let link_endpoints = HashMap::new();
        let flows = HashMap::new();
        let mut chunks_for_dest = HashMap::new();
        chunks_for_dest.insert(NodeId(1), vec![0usize]);
        let sends = decompose_source_flow(
            NodeId(0),
            &chunks_for_dest,
            &flows,
            &link_endpoints,
            |_| 0,
            4,
        );
        assert!(sends.is_empty());
    }
}
