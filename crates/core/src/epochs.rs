//! Epoch-duration selection and epoch-count estimation (§5, Appendix E).

use teccl_collective::DemandMatrix;
use teccl_topology::{Link, NodeId, Topology};

use crate::config::{EpochStrategy, SolverConfig};

/// Computes the epoch duration τ for a topology, chunk size and strategy,
/// including the epoch multiplier (EM).
///
/// * [`EpochStrategy::SlowestLink`]: τ = chunk / slowest-link capacity — every
///   link fits at least one chunk per epoch (§5 option a).
/// * [`EpochStrategy::FastestLink`]: τ = chunk / fastest-link capacity — finer
///   schedules; slower links need the Appendix-F windowed capacity constraint
///   (§5 option b).
///
/// Following §6 ("In the cases where α > 200·τ we increase the epoch duration
/// by 5× to avoid large models"), the duration is stretched when the largest α
/// dwarfs it.
pub fn epoch_duration(topo: &Topology, chunk_bytes: f64, config: &SolverConfig) -> f64 {
    let cap = match config.epoch_strategy {
        EpochStrategy::SlowestLink => topo.slowest_link_capacity(),
        EpochStrategy::FastestLink => topo.fastest_link_capacity(),
    };
    let mut tau = chunk_bytes / cap * config.epoch_multiplier;
    let max_alpha = topo.max_alpha();
    if max_alpha > 200.0 * tau {
        tau *= 5.0;
    }
    tau
}

/// Number of epochs of α-delay on a link: ⌈α / τ⌉ (the δ of Table 1).
pub fn delta_epochs(link: &Link, tau: f64) -> usize {
    if link.alpha <= 0.0 {
        0
    } else {
        (link.alpha / tau).ceil() as usize
    }
}

/// Number of epochs needed to transmit one chunk over a link: ⌈(S/C) / τ⌉
/// (the κ of Appendix F; 1 when the epoch was sized by this or a slower link).
pub fn kappa_epochs(link: &Link, chunk_bytes: f64, tau: f64) -> usize {
    ((chunk_bytes / link.capacity) / tau).ceil().max(1.0) as usize
}

/// Fractional link capacity in chunks per epoch: T·τ expressed in chunks.
pub fn capacity_chunks_per_epoch(link: &Link, chunk_bytes: f64, tau: f64) -> f64 {
    link.capacity * tau / chunk_bytes
}

/// Analytic upper bound on the number of epochs needed to satisfy `demand`
/// (the default used when the caller does not provide `max_epochs`).
///
/// The bound combines (1) a bandwidth term — the most loaded destination's
/// demand divided by its incoming capacity per epoch, and the most loaded
/// source's injection divided by its outgoing capacity, (2) a latency term —
/// the worst α+hop distance between any demanded (source, destination) pair in
/// epochs — and a small slack. This deliberately over-estimates (the
/// optimization finds the earliest completion by itself, §5/Appendix E); a
/// tight value is only a model-size optimization.
pub fn estimate_num_epochs(
    topo: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    tau: f64,
) -> usize {
    let mut worst_bw_epochs: f64 = 1.0;
    // Destination side.
    for d in topo.gpus() {
        let needed = demand.demand_of_destination(d) as f64;
        if needed == 0.0 {
            continue;
        }
        let in_cap: f64 = topo
            .in_links(d)
            .map(|l| capacity_chunks_per_epoch(l, chunk_bytes, tau))
            .sum();
        if in_cap > 0.0 {
            worst_bw_epochs = worst_bw_epochs.max(needed / in_cap);
        }
    }
    // Source side.
    for s in topo.gpus() {
        let injected = demand.demand_of_source(s) as f64;
        if injected == 0.0 {
            continue;
        }
        let out_cap: f64 = topo
            .out_links(s)
            .map(|l| capacity_chunks_per_epoch(l, chunk_bytes, tau))
            .sum();
        if out_cap > 0.0 {
            worst_bw_epochs = worst_bw_epochs.max(injected / out_cap);
        }
    }

    // Latency term: worst (hops + Σδ) over demanded pairs, computed on the
    // per-link cost of crossing it once (κ epochs of transmission + δ of α).
    let pm = teccl_topology::floyd_warshall(topo, |l| {
        (kappa_epochs(l, chunk_bytes, tau) + delta_epochs(l, tau)) as f64
    });
    let mut worst_latency_epochs: f64 = 0.0;
    for (s, _c, d) in demand.iter() {
        let dist = pm.distance(s, d);
        if dist.is_finite() {
            worst_latency_epochs = worst_latency_epochs.max(dist);
        }
    }

    let est = worst_bw_epochs * 1.5 + worst_latency_epochs + 2.0;
    (est.ceil() as usize).max(2)
}

/// Algorithm 1 (Appendix E): sweeps candidate completion times with very
/// coarse epochs, checking feasibility of the *LP relaxation* of the general
/// form, and converts the first feasible completion time into an epoch count
/// at the target epoch duration `tau_opt`.
///
/// `solve_coarse` is the feasibility oracle: given a candidate epoch duration
/// and epoch count it must report whether the coarse problem is feasible (the
/// caller wires this to the LP relaxation of the MILP form so this module does
/// not depend on the formulation code).
pub fn algorithm1_num_epochs<F>(
    topo: &Topology,
    demand: &DemandMatrix,
    chunk_bytes: f64,
    tau_opt: f64,
    mut solve_coarse: F,
) -> usize
where
    F: FnMut(f64, usize) -> bool,
{
    // Candidate completion times: a geometric sweep upward from an optimistic
    // lower bound (one epoch at the coarsest granularity).
    let analytic = estimate_num_epochs(topo, demand, chunk_bytes, tau_opt);
    let optimistic = tau_opt * 2.0;
    let candidates: Vec<f64> = (0..8).map(|i| optimistic * 2f64.powi(i)).collect();
    for total_time in candidates {
        for ne in [4usize, 8, 12] {
            let tau = total_time / ne as f64;
            if tau < tau_opt {
                continue; // coarse epochs only
            }
            if solve_coarse(tau, ne) {
                let k = (total_time / tau_opt).ceil() as usize;
                return k.max(2);
            }
        }
    }
    // Fall back to the analytic bound if no coarse run was feasible.
    analytic
}

/// The set of GPU ids a demand touches; used to sanity check demands against
/// topologies before formulating.
pub fn demand_endpoints(demand: &DemandMatrix) -> Vec<NodeId> {
    let mut set = std::collections::BTreeSet::new();
    for (s, _c, d) in demand.iter() {
        set.insert(s);
        set.insert(d);
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SolverConfig;
    use teccl_topology::{line_topology, ndv2};

    #[test]
    fn epoch_duration_strategies() {
        let topo = ndv2(1); // 50 and 25 GB/s links
        let chunk = 1.0e6;
        let fast = epoch_duration(&topo, chunk, &SolverConfig::default());
        let slow = epoch_duration(
            &topo,
            chunk,
            &SolverConfig::default().with_epoch_strategy(EpochStrategy::SlowestLink),
        );
        assert!((fast - chunk / 50e9).abs() < 1e-15);
        assert!((slow - chunk / 25e9).abs() < 1e-15);
        assert!(slow > fast);
    }

    #[test]
    fn epoch_multiplier_scales_duration() {
        let topo = line_topology(3, 1e9, 0.0);
        let base = epoch_duration(&topo, 1e6, &SolverConfig::default());
        let doubled = epoch_duration(
            &topo,
            1e6,
            &SolverConfig::default().with_epoch_multiplier(2.0),
        );
        assert!((doubled - 2.0 * base).abs() < 1e-15);
    }

    #[test]
    fn tiny_epochs_with_huge_alpha_get_stretched() {
        // 1 KB chunks on 25 GB/s: tau = 40 ns, alpha = 0.7 us > 200 * tau? No
        // (200*40ns = 8us). Use 100-byte chunks: tau = 4 ns, 200*4ns = 0.8 us
        // with alpha 1.3us on NDv2 uplinks → stretched by 5x.
        let topo = ndv2(2);
        let tau = epoch_duration(&topo, 100.0, &SolverConfig::default());
        assert!((tau - 5.0 * 100.0 / 50e9).abs() < 1e-18);
    }

    #[test]
    fn delta_and_kappa() {
        let topo = line_topology(2, 1e9, 2.5e-6);
        let link = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(delta_epochs(link, 1e-6), 3);
        assert_eq!(delta_epochs(link, 1e-5), 1);
        // chunk of 1 MB over 1 GB/s = 1 ms; with tau = 0.25 ms, kappa = 4.
        assert_eq!(kappa_epochs(link, 1e6, 0.25e-3), 4);
        assert_eq!(kappa_epochs(link, 1e6, 1e-3), 1);
        assert!((capacity_chunks_per_epoch(link, 1e6, 1e-3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_alpha_has_zero_delta() {
        let topo = line_topology(2, 1e9, 0.0);
        let link = topo.link_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(delta_epochs(link, 1e-6), 0);
    }

    #[test]
    fn epoch_estimate_scales_with_demand() {
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let small = DemandMatrix::broadcast(4, &gpus, NodeId(0), 1);
        let large = DemandMatrix::broadcast(4, &gpus, NodeId(0), 8);
        let tau = 1e-3;
        let k_small = estimate_num_epochs(&topo, &small, 1e6, tau);
        let k_large = estimate_num_epochs(&topo, &large, 1e6, tau);
        assert!(k_large > k_small);
        assert!(k_small >= 3); // at least the 3-hop latency term
    }

    #[test]
    fn algorithm1_uses_first_feasible_candidate() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let tau_opt = 1e-3;
        // Oracle: feasible as soon as the total time is at least 4 ms.
        let k = algorithm1_num_epochs(&topo, &demand, 1e6, tau_opt, |tau, ne| {
            tau * ne as f64 >= 4e-3
        });
        assert!(k >= 4);
        // Oracle that always fails → falls back to the analytic estimate.
        let k2 = algorithm1_num_epochs(&topo, &demand, 1e6, tau_opt, |_, _| false);
        assert_eq!(k2, estimate_num_epochs(&topo, &demand, 1e6, tau_opt));
    }

    #[test]
    fn demand_endpoints_lists_participants() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let eps = demand_endpoints(&demand);
        assert_eq!(eps, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
