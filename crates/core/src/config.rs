//! Solver configuration: the knobs §5 of the paper exposes.

use std::time::Duration;

pub use teccl_lp::Decompose;

/// How the epoch duration is derived from the topology (§5 "Epoch durations
/// and chunk sizes").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochStrategy {
    /// Option (a): epoch = time for the *slowest* link to transmit one chunk.
    /// Every link can carry at least one chunk per epoch; coarser schedules.
    SlowestLink,
    /// Option (b): epoch = time for the *fastest* link to transmit one chunk.
    /// Finer-grained schedules; slow links get the Appendix-F windowed
    /// capacity constraint. This is what the paper uses for most evaluations.
    FastestLink,
}

/// How switches are modeled (§3.1 "Modeling switches", Appendix C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchModel {
    /// Switches can copy chunks (SHArP-style in-network multicast); they still
    /// have no buffer.
    CopyCapable,
    /// Legacy switches: traditional flow conservation (what goes in must come
    /// out, no duplication), no buffer.
    NonCopy,
    /// TACCL-style hyper-edge model (Appendix C): the switch is removed and
    /// replaced with direct GPU-to-GPU edges whose simultaneous use is limited
    /// by the switch's port counts. Traffic pays a single transmission delay
    /// to cross the switch — used for apples-to-apples TACCL comparisons.
    HyperEdge,
}

/// Store-and-forward buffer handling (§3.1 buffers, Appendix B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferMode {
    /// Unlimited buffering at GPUs (the paper's default: ALLGATHER-style
    /// collectives need all the data anyway).
    Unlimited,
    /// Limited per-GPU buffer of this many chunks (Appendix B adds eviction
    /// variables).
    LimitedChunks(usize),
    /// No store-and-forward at relays: a GPU may only hold chunks it is the
    /// source of or that it itself demands; relayed chunks must be forwarded
    /// the epoch after they arrive (the "without buffers" arm of Figure 9).
    NoStoreAndForward,
}

/// Full solver configuration.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Epoch-duration strategy.
    pub epoch_strategy: EpochStrategy,
    /// Multiplier applied to the computed epoch duration (the "EM" column of
    /// Table 4 — used to trade solution quality for solver memory/time on
    /// large topologies).
    pub epoch_multiplier: f64,
    /// Switch model.
    pub switch_model: SwitchModel,
    /// Buffer handling.
    pub buffer_mode: BufferMode,
    /// Upper bound on the number of epochs. `None` = estimate automatically
    /// (Algorithm 1 / the analytic bound in [`crate::epochs`]).
    pub max_epochs: Option<usize>,
    /// Relative MIP gap at which the MILP may stop early (the paper's
    /// "early stop at 30%" uses `Some(0.3)`); `None` proves optimality.
    pub early_stop_gap: Option<f64>,
    /// Wall-clock limit for a single MILP solve (the paper uses 2 hours with
    /// Gurobi; tests and benches use much smaller values).
    pub time_limit: Option<Duration>,
    /// Epochs per A* round (§4.2: chosen so chunks arrive at most one round
    /// late). `None` = derive from the topology's maximum α-delay.
    pub astar_epochs_per_round: Option<usize>,
    /// Weight γ < 1 of the A* distance reward (Appendix D).
    pub astar_gamma: f64,
    /// Maximum number of A* rounds before giving up.
    pub astar_max_rounds: usize,
    /// Per-chunk objective weights for multi-tenant priorities (§5); indexed
    /// by chunk id, missing entries default to 1.0.
    pub chunk_priorities: Option<Vec<f64>>,
    /// Whether branch-and-bound nodes re-solve from their parent's simplex
    /// basis (Gurobi-style warm starts). On by default; disable only to
    /// measure the cold-start cost.
    pub warm_start: bool,
    /// Whether consecutive A* rounds carry the root relaxation's simplex
    /// basis so round `t+1` re-optimizes dually from round `t`'s basis.
    /// Rounds are built from the full commodity set (delivered commodities
    /// get their flows *bound-pinned*, not removed) and presolve is
    /// layout-preserving, so the carried basis stays valid through the
    /// normal pipeline — presolve and reachability pruning stay on.
    /// Requires an unlimited/limited buffer mode (the no-store-and-forward
    /// variable set depends on the round state); the A* solver silently
    /// falls back to per-round cold solves otherwise.
    ///
    /// On by default: re-measured after the layout-preserving presolve
    /// landed, warm rounds cut simplex iterations by ~35-45% and win wall
    /// clock on the Table-4 A* scenarios (median of 7: internal1(2) AG 16 MB
    /// 67.6 → 62.7 ms, internal2(2) AG 16 MB 4.7 → 3.8 ms, internal2(4) AG
    /// 16 MB 60.8 → 56.9 ms). The exception is very short runs (2 rounds,
    /// e.g. NDv2 x1 AG 4 MB: 35.6 → 42.8 ms) where there is almost no
    /// cross-round reuse to amortize the full-commodity build — disable it
    /// there if the difference matters.
    pub astar_warm_rounds: bool,
    /// Worker threads a single solve may use: branch-and-bound explores the
    /// tree from a shared open-node pool with this many workers, and large
    /// pure-LP solves race that many (capped at 4) pricing/perturbation
    /// configurations, first certified result wins. `1` (the default) is the
    /// sequential solver. The *answer* is thread-count invariant; only
    /// latency and exploration order change, which is why the schedule cache
    /// key deliberately excludes this knob (see `teccl-service`). Like the
    /// budget, this is a *how* knob, not a *what* knob.
    pub threads: usize,
    /// Whether the copy-free LP path may solve by Dantzig-Wolfe
    /// decomposition: the time-expanded multi-commodity flow splits into one
    /// pricing subproblem per commodity source coupled only by the link
    /// capacity (and buffer-limit) rows, and the subproblems re-solve in
    /// parallel across [`SolverConfig::threads`] workers. `Auto` (the
    /// default) engages only when it should win — pure LP, big enough, more
    /// than one thread — mirroring the portfolio-race gate. Like `threads`,
    /// this is a *how* knob: the certified answer is identical either way,
    /// so the schedule cache key deliberately excludes it.
    pub decompose: Decompose,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            epoch_strategy: EpochStrategy::FastestLink,
            epoch_multiplier: 1.0,
            switch_model: SwitchModel::CopyCapable,
            buffer_mode: BufferMode::Unlimited,
            max_epochs: None,
            early_stop_gap: None,
            time_limit: Some(Duration::from_secs(120)),
            astar_epochs_per_round: None,
            astar_gamma: 0.5,
            astar_max_rounds: 64,
            chunk_priorities: None,
            warm_start: true,
            astar_warm_rounds: true,
            threads: 1,
            decompose: Decompose::Auto,
        }
    }
}

impl SolverConfig {
    /// The paper's "early stop" configuration (30% optimality gap allowed).
    pub fn early_stop() -> Self {
        Self {
            early_stop_gap: Some(0.3),
            ..Default::default()
        }
    }

    /// Configuration matching the TACCL-fair comparison: hyper-edge switch
    /// model so a chunk pays a single transmission delay across a switch.
    pub fn taccl_comparable() -> Self {
        Self {
            switch_model: SwitchModel::HyperEdge,
            ..Default::default()
        }
    }

    /// Sets the maximum number of epochs.
    pub fn with_max_epochs(mut self, k: usize) -> Self {
        self.max_epochs = Some(k);
        self
    }

    /// Sets the epoch strategy.
    pub fn with_epoch_strategy(mut self, s: EpochStrategy) -> Self {
        self.epoch_strategy = s;
        self
    }

    /// Sets the buffer mode.
    pub fn with_buffer_mode(mut self, b: BufferMode) -> Self {
        self.buffer_mode = b;
        self
    }

    /// Sets the switch model.
    pub fn with_switch_model(mut self, s: SwitchModel) -> Self {
        self.switch_model = s;
        self
    }

    /// Sets the per-solve time limit.
    pub fn with_time_limit(mut self, d: Duration) -> Self {
        self.time_limit = Some(d);
        self
    }

    /// Sets the intra-solve thread count (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the Dantzig-Wolfe decomposition mode for the copy-free LP path.
    pub fn with_decompose(mut self, d: Decompose) -> Self {
        self.decompose = d;
        self
    }

    /// Sets the epoch multiplier (EM).
    pub fn with_epoch_multiplier(mut self, em: f64) -> Self {
        assert!(em >= 1.0, "epoch multiplier must be >= 1");
        self.epoch_multiplier = em;
        self
    }

    /// The priority weight of a chunk id (1.0 unless configured).
    pub fn chunk_priority(&self, chunk: usize) -> f64 {
        self.chunk_priorities
            .as_ref()
            .and_then(|p| p.get(chunk).copied())
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let c = SolverConfig::default();
        assert_eq!(c.epoch_strategy, EpochStrategy::FastestLink);
        assert_eq!(c.switch_model, SwitchModel::CopyCapable);
        assert_eq!(c.buffer_mode, BufferMode::Unlimited);
        assert!(c.early_stop_gap.is_none());
        assert!(c.astar_gamma < 1.0);
    }

    #[test]
    fn builder_methods() {
        let c = SolverConfig::early_stop()
            .with_max_epochs(12)
            .with_epoch_strategy(EpochStrategy::SlowestLink)
            .with_buffer_mode(BufferMode::LimitedChunks(4))
            .with_switch_model(SwitchModel::NonCopy)
            .with_epoch_multiplier(2.0);
        assert_eq!(c.early_stop_gap, Some(0.3));
        assert_eq!(c.max_epochs, Some(12));
        assert_eq!(c.epoch_strategy, EpochStrategy::SlowestLink);
        assert_eq!(c.buffer_mode, BufferMode::LimitedChunks(4));
        assert_eq!(c.switch_model, SwitchModel::NonCopy);
        assert_eq!(c.epoch_multiplier, 2.0);
    }

    #[test]
    fn chunk_priorities_default_to_one() {
        let mut c = SolverConfig::default();
        assert_eq!(c.chunk_priority(3), 1.0);
        c.chunk_priorities = Some(vec![2.0, 0.5]);
        assert_eq!(c.chunk_priority(0), 2.0);
        assert_eq!(c.chunk_priority(1), 0.5);
        assert_eq!(c.chunk_priority(2), 1.0);
    }

    #[test]
    #[should_panic]
    fn epoch_multiplier_below_one_panics() {
        let _ = SolverConfig::default().with_epoch_multiplier(0.5);
    }

    #[test]
    fn taccl_comparable_uses_hyperedges() {
        assert_eq!(
            SolverConfig::taccl_comparable().switch_model,
            SwitchModel::HyperEdge
        );
    }
}
