//! Switch models (§3.1 "Modeling switches", Appendix C).
//!
//! * **Copy-capable switch** (default): the switch participates in the flow
//!   conservation constraints like any node but with a zero buffer. Models
//!   SHArP-style in-network multicast.
//! * **Non-copy switch**: traditional flow conservation at the switch (what
//!   comes in must go out, no duplication), zero buffer.
//! * **Hyper-edge model**: the switch is removed from the graph and replaced
//!   by direct GPU-to-GPU "hyper-edges"; the number of hyper-edges usable in
//!   the same epoch is capped by the switch's port counts, and each GPU can
//!   use at most one of its incoming and one of its outgoing hyper-edges per
//!   epoch (Appendix C). This is TACCL's model and is used for the
//!   apples-to-apples comparison of §6.1, where a chunk pays a single
//!   transmission delay to cross a switch.

use teccl_topology::{LinkId, NodeId, Topology};

/// A group of hyper-edges that replaced one switch, together with the usage
/// limits Appendix C imposes.
#[derive(Debug, Clone)]
pub struct HyperEdgeGroup {
    /// Name of the switch that was replaced (for reporting).
    pub switch_name: String,
    /// All hyper-edge link ids (in the transformed topology) of this group.
    pub links: Vec<LinkId>,
    /// Maximum number of hyper-edges of this group usable in one epoch:
    /// `min(#links into the switch, #links out of the switch)`.
    pub max_concurrent: usize,
    /// Per-GPU outgoing hyper-edges (each GPU may use at most one per epoch).
    pub out_edges_of: Vec<(NodeId, Vec<LinkId>)>,
    /// Per-GPU incoming hyper-edges (each GPU may use at most one per epoch).
    pub in_edges_of: Vec<(NodeId, Vec<LinkId>)>,
}

/// Replaces every switch with direct GPU-to-GPU hyper-edges.
///
/// A hyper-edge `(i, j)` is added for every pair where `i → switch` and
/// `switch → j` exist and no direct `i → j` link already exists. Its capacity
/// is the minimum of the two crossed links and its α their sum — but the chunk
/// pays only **one** transmission (β) delay, which is exactly the accounting
/// difference between TACCL's switch handling and TE-CCL's (§6 "Baselines").
///
/// Returns the transformed topology (same GPU node ids, switches retained as
/// isolated nodes so ids stay stable) and one [`HyperEdgeGroup`] per switch.
pub fn hyperedge_transform(topo: &Topology) -> (Topology, Vec<HyperEdgeGroup>) {
    let mut out = Topology::new(format!("{} (hyper-edge)", topo.name));
    // Recreate all nodes with identical ids.
    for n in &topo.nodes {
        match n.kind {
            teccl_topology::NodeKind::Gpu => out.add_gpu(n.name.clone(), n.chassis),
            teccl_topology::NodeKind::Switch => out.add_switch(n.name.clone(), n.chassis),
        };
    }
    // Copy all GPU-GPU links.
    for l in &topo.links {
        if !topo.is_switch(l.src) && !topo.is_switch(l.dst) {
            out.add_link(l.src, l.dst, l.capacity, l.alpha);
        }
    }
    // Replace each switch by hyper-edges.
    let mut groups = Vec::new();
    for sw in topo.switches() {
        let in_links: Vec<_> = topo
            .in_links(sw)
            .filter(|l| !topo.is_switch(l.src))
            .collect();
        let out_links: Vec<_> = topo
            .out_links(sw)
            .filter(|l| !topo.is_switch(l.dst))
            .collect();
        let mut links = Vec::new();
        let mut out_edges_of: std::collections::BTreeMap<NodeId, Vec<LinkId>> = Default::default();
        let mut in_edges_of: std::collections::BTreeMap<NodeId, Vec<LinkId>> = Default::default();
        for inl in &in_links {
            for outl in &out_links {
                let (i, j) = (inl.src, outl.dst);
                if i == j || out.link_between(i, j).is_some() {
                    continue;
                }
                let capacity = inl.capacity.min(outl.capacity);
                let alpha = inl.alpha + outl.alpha;
                let id = out.add_link(i, j, capacity, alpha);
                links.push(id);
                out_edges_of.entry(i).or_default().push(id);
                in_edges_of.entry(j).or_default().push(id);
            }
        }
        groups.push(HyperEdgeGroup {
            switch_name: topo.nodes[sw.0].name.clone(),
            max_concurrent: in_links.len().min(out_links.len()),
            links,
            out_edges_of: out_edges_of.into_iter().collect(),
            in_edges_of: in_edges_of.into_iter().collect(),
        });
    }
    (out, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_topology::{internal2, ndv2};

    #[test]
    fn transform_keeps_gpu_links_and_node_ids() {
        let topo = internal2(2); // 4 GPUs + 1 switch
        let (t, groups) = hyperedge_transform(&topo);
        assert_eq!(t.num_nodes(), topo.num_nodes());
        assert_eq!(groups.len(), 1);
        // Intra-chassis GPU links survive.
        assert!(t.link_between(NodeId(0), NodeId(1)).is_some());
        // The switch is now isolated: no links touch it.
        let sw = topo.switches().next().unwrap();
        assert_eq!(t.out_links(sw).count(), 0);
        assert_eq!(t.in_links(sw).count(), 0);
    }

    #[test]
    fn hyperedges_connect_cross_chassis_gpus() {
        let topo = internal2(2);
        let (t, groups) = hyperedge_transform(&topo);
        // GPU 0 (chassis 0) now has a direct edge to GPU 2 (chassis 1).
        assert!(t.link_between(NodeId(0), NodeId(2)).is_some());
        // All 4 GPUs attach to the switch, so the concurrency cap is 4.
        assert_eq!(groups[0].max_concurrent, 4);
        // Hyper-edge α is the sum of the two crossed links' α.
        let l = t.link_between(NodeId(0), NodeId(2)).unwrap();
        assert!((l.alpha - 2.0 * 0.75e-6).abs() < 1e-15);
        assert!((l.capacity - 12.5e9).abs() < 1.0);
    }

    #[test]
    fn no_hyperedge_duplicates_existing_direct_links() {
        let topo = internal2(2);
        let (t, _) = hyperedge_transform(&topo);
        // GPU0-GPU1 are directly connected in-chassis; the transform must not
        // add a second parallel edge (validate() would flag duplicates).
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ndv2_groups_track_uplinked_gpus_only() {
        let topo = ndv2(2);
        let (t, groups) = hyperedge_transform(&topo);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        // Only GPUs 0, 1 of each chassis uplink: 4 GPUs total; edges go between
        // chassis (and between GPU0/GPU1 pairs across chassis) minus existing
        // direct links.
        assert_eq!(g.max_concurrent, 4);
        assert!(!g.links.is_empty());
        for (_, links) in &g.out_edges_of {
            assert!(!links.is_empty());
        }
        assert!(t.validate().is_ok());
    }

    #[test]
    fn topology_without_switches_is_unchanged() {
        let topo = teccl_topology::dgx1();
        let (t, groups) = hyperedge_transform(&topo);
        assert!(groups.is_empty());
        assert_eq!(t.num_links(), topo.num_links());
    }
}
