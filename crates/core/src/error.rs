//! Error type of the TE-CCL solver.

use std::fmt;

use teccl_lp::LpError;

/// Errors produced while formulating or solving a collective optimization.
#[derive(Debug, Clone, PartialEq)]
pub enum TeCclError {
    /// The underlying LP/MILP solver failed.
    Lp(LpError),
    /// The optimization is infeasible with the given number of epochs `k`;
    /// increase `max_epochs` (§5 "Number of epochs": too small a bound makes
    /// the problem infeasible).
    InfeasibleWithEpochs(usize),
    /// No feasible schedule was found within the configured limits.
    NoSolution,
    /// The demand is empty — nothing to schedule.
    EmptyDemand,
    /// The demand references nodes outside the topology, or demands data at a
    /// switch.
    InvalidDemand(String),
    /// The A* solver did not satisfy all demands within its round limit.
    AStarDidNotConverge {
        rounds: usize,
        remaining_demands: usize,
    },
    /// A cooperative [`teccl_util::SolveBudget`] stopped the solve (cancel,
    /// deadline, or iteration cap) before any feasible schedule existed.
    /// When an incumbent exists the solver instead returns a normal outcome
    /// with `stats.budget_stop` set.
    Budget(teccl_util::BudgetExceeded),
}

impl fmt::Display for TeCclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeCclError::Lp(e) => write!(f, "LP solver error: {e}"),
            TeCclError::InfeasibleWithEpochs(k) => {
                write!(f, "infeasible with {k} epochs; increase max_epochs")
            }
            TeCclError::NoSolution => write!(f, "no feasible schedule found within limits"),
            TeCclError::EmptyDemand => write!(f, "the demand matrix is empty"),
            TeCclError::InvalidDemand(msg) => write!(f, "invalid demand: {msg}"),
            TeCclError::AStarDidNotConverge { rounds, remaining_demands } => write!(
                f,
                "A* did not satisfy all demands after {rounds} rounds ({remaining_demands} remaining)"
            ),
            TeCclError::Budget(cause) => write!(f, "solve budget exhausted: {cause}"),
        }
    }
}

impl std::error::Error for TeCclError {}

impl From<LpError> for TeCclError {
    fn from(e: LpError) -> Self {
        match e {
            LpError::Budget(cause) => TeCclError::Budget(cause),
            other => TeCclError::Lp(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: TeCclError = LpError::IterationLimit(10).into();
        assert!(e.to_string().contains("LP solver error"));
        assert!(TeCclError::InfeasibleWithEpochs(5)
            .to_string()
            .contains("5 epochs"));
        assert!(TeCclError::EmptyDemand.to_string().contains("empty"));
        assert!(TeCclError::AStarDidNotConverge {
            rounds: 3,
            remaining_demands: 2
        }
        .to_string()
        .contains("3 rounds"));
        assert!(TeCclError::InvalidDemand("x".into())
            .to_string()
            .contains("x"));
        assert!(TeCclError::NoSolution.to_string().contains("feasible"));
    }
}
