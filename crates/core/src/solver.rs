//! The top-level TE-CCL solver: formulation selection, epoch estimation,
//! schedule extraction and post-processing.

use std::time::{Duration, Instant};

use teccl_collective::{DemandMatrix, TenantDemand};
use teccl_lp::{SimplexBasis, SolveStats, SolveStatus};
use teccl_schedule::Schedule;
use teccl_topology::Topology;

use teccl_util::SolveBudget;

use crate::astar::solve_astar_budgeted;
use crate::config::{SolverConfig, SwitchModel};
use crate::epochs::{delta_epochs, epoch_duration, estimate_num_epochs, kappa_epochs};
use crate::error::TeCclError;
use crate::extract::{prune_sends, schedule_from_sends};
use crate::lp_form::LpFormulation;
use crate::milp_form::{MilpBuildOptions, MilpFormulation};
use crate::switch::hyperedge_transform;

/// Which formulation produced a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormulationKind {
    /// The general MILP (§3.1) — supports copy, optimal.
    GeneralMilp,
    /// The LP for copy-free demands (§4.1) — optimal, scalable.
    Lp,
    /// The A* time-partitioned solver (§4.2) — copy, scalable, sub-optimal.
    AStar,
}

/// The result of a TE-CCL solve.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The schedule (already pruned of useless flows).
    pub schedule: Schedule,
    /// The topology the schedule refers to — identical to the input topology
    /// unless the hyper-edge switch model transformed it.
    pub topology_used: Topology,
    /// Which formulation was used.
    pub formulation: FormulationKind,
    /// The underlying solver status (Optimal / Feasible for early stop).
    pub status: SolveStatus,
    /// Wall-clock solver time.
    pub solver_time: Duration,
    /// Number of epochs given to the formulation.
    pub num_epochs: usize,
    /// Epoch duration τ in seconds.
    pub epoch_duration: f64,
    /// Relative MIP gap at termination (0 for LPs / proven optima).
    pub mip_gap: f64,
    /// Underlying solver statistics (simplex iterations, B&B nodes, LU
    /// factorizations, warm/cold starts) aggregated over the whole solve —
    /// across rounds for A*.
    pub stats: SolveStats,
    /// The final warm-start basis the solve published (the root relaxation's
    /// basis for MILPs, the final LP basis for LPs, the last round's root
    /// basis for A*), if any: the schedule service feeds it into
    /// [`TeCcl::solve_from`] so a cache-adjacent request (same topology and
    /// collective, neighbouring buffer-size bucket) re-optimizes from it
    /// instead of starting cold.
    pub basis: Option<SimplexBasis>,
}

/// The TE-CCL collective communication optimizer.
///
/// Construct it once per topology and call [`TeCcl::solve`] per demand; the
/// solver picks the right formulation (LP for copy-free demands, MILP for
/// copy-friendly demands on small topologies, A* on larger ones), following
/// the paper's usage of its three algorithms.
#[derive(Debug, Clone)]
pub struct TeCcl {
    topology: Topology,
    config: SolverConfig,
    /// Cooperative budget threaded into every solve this instance runs. Kept
    /// out of [`SolverConfig`] on purpose: a deadline is a property of one
    /// request, not of the problem, and must not perturb the content-
    /// addressed cache keys the service derives from the config.
    budget: Option<SolveBudget>,
}

/// GPU count above which the automatic dispatcher prefers A* over the
/// monolithic MILP for copy-friendly demands (the paper switches to A* on
/// multi-chassis topologies for the same reason, §4.2/§6.2).
const ASTAR_GPU_THRESHOLD: usize = 12;

impl TeCcl {
    /// Creates a solver for a topology.
    pub fn new(topology: Topology, config: SolverConfig) -> Self {
        Self {
            topology,
            config,
            budget: None,
        }
    }

    /// Attaches a cooperative [`SolveBudget`] (deadline / cancel flag /
    /// iteration cap) checked inside every pivot, branch-and-bound node and
    /// A* round of every solve run through this instance. When it trips:
    /// MILP/LP solves return their best incumbent with `stats.budget_stop`
    /// set, or [`TeCclError::Budget`] when no feasible point exists yet; A*
    /// always returns [`TeCclError::Budget`] (a prefix of rounds is not a
    /// schedule).
    pub fn with_budget(mut self, budget: SolveBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The attached budget, if any.
    pub fn budget(&self) -> Option<&SolveBudget> {
        self.budget.as_ref()
    }

    /// The configuration in use.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The topology in use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Prepares the (possibly hyper-edge transformed) topology, the epoch
    /// duration and the epoch count for a demand.
    fn prepare(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
    ) -> (Topology, Vec<crate::switch::HyperEdgeGroup>, f64, usize) {
        let (topo, groups) = match self.config.switch_model {
            SwitchModel::HyperEdge => hyperedge_transform(&self.topology),
            _ => (self.topology.clone(), Vec::new()),
        };
        let tau = epoch_duration(&topo, chunk_bytes, &self.config);
        let k = self
            .config
            .max_epochs
            .unwrap_or_else(|| estimate_num_epochs(&topo, demand, chunk_bytes, tau));
        (topo, groups, tau, k)
    }

    /// Solves a demand, automatically choosing the formulation:
    /// copy-free demands use the LP; copy-friendly demands use the MILP on
    /// small topologies and A* on larger ones.
    pub fn solve(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
    ) -> Result<SolveOutcome, TeCclError> {
        self.solve_from(demand, chunk_bytes, None)
    }

    /// [`TeCcl::solve`] with an externally supplied warm-start basis — the
    /// re-entrant entry point the schedule service uses from its worker
    /// threads. The basis is handed to the root relaxation of whichever
    /// formulation the dispatcher picks; a basis of the wrong shape (from a
    /// different size bucket whose epoch count differs, say) silently falls
    /// back to a cold start inside the LP layer, so a stale hint can cost a
    /// failed warm attempt but never correctness.
    pub fn solve_from(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
        basis: Option<&SimplexBasis>,
    ) -> Result<SolveOutcome, TeCclError> {
        if !demand.benefits_from_copy() {
            self.solve_lp_from(demand, chunk_bytes, basis)
        } else if self.topology.num_gpus() > ASTAR_GPU_THRESHOLD {
            self.solve_astar_from(demand, chunk_bytes, basis)
        } else {
            self.solve_milp_from(demand, chunk_bytes, basis)
        }
    }

    /// Solves with the general MILP formulation (§3.1). Retries with a larger
    /// epoch budget if the first attempt is infeasible.
    pub fn solve_milp(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
    ) -> Result<SolveOutcome, TeCclError> {
        self.solve_milp_from(demand, chunk_bytes, None)
    }

    /// [`TeCcl::solve_milp`] warm-started from a prior basis.
    pub fn solve_milp_from(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
        basis: Option<&SimplexBasis>,
    ) -> Result<SolveOutcome, TeCclError> {
        let start = Instant::now();
        let (topo, groups, tau, k0) = self.prepare(demand, chunk_bytes);
        let options = MilpBuildOptions {
            hyperedge_groups: groups,
            ..Default::default()
        };

        let mut k = k0.max(2);
        let mut last_err = TeCclError::NoSolution;
        for _attempt in 0..3 {
            let form =
                MilpFormulation::build(&topo, demand, chunk_bytes, &self.config, k, tau, &options)?;
            match form.solve_budgeted(&self.config, basis, self.budget.as_ref()) {
                Ok(sol) => {
                    let sends = form.sends(&sol);
                    let pruned = prune_sends(&sends, demand, form.initial_holders(), |a, b| {
                        form.delta_of(a, b)
                    });
                    let mut schedule = schedule_from_sends(
                        "te-ccl-milp",
                        chunk_bytes,
                        tau,
                        pruned,
                        start.elapsed().as_secs_f64(),
                    );
                    schedule.num_epochs = schedule.num_epochs.max(k);
                    return Ok(SolveOutcome {
                        schedule,
                        topology_used: topo,
                        formulation: FormulationKind::GeneralMilp,
                        status: sol.status,
                        solver_time: start.elapsed(),
                        num_epochs: k,
                        epoch_duration: tau,
                        mip_gap: sol.stats.mip_gap,
                        stats: sol.stats.clone(),
                        basis: sol.basis,
                    });
                }
                Err(TeCclError::InfeasibleWithEpochs(_)) => {
                    last_err = TeCclError::InfeasibleWithEpochs(k);
                    k *= 2;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Solves with the LP formulation (§4.1) — intended for copy-free demands.
    pub fn solve_lp(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
    ) -> Result<SolveOutcome, TeCclError> {
        self.solve_lp_from(demand, chunk_bytes, None)
    }

    /// [`TeCcl::solve_lp`] warm-started from a prior basis.
    pub fn solve_lp_from(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
        basis: Option<&SimplexBasis>,
    ) -> Result<SolveOutcome, TeCclError> {
        let start = Instant::now();
        let (topo, _groups, tau, k0) = self.prepare(demand, chunk_bytes);

        let mut k = k0.max(2);
        let mut last_err = TeCclError::NoSolution;
        for _attempt in 0..3 {
            let form = LpFormulation::build(&topo, demand, chunk_bytes, &self.config, k, tau)?;
            match form.solve_budgeted(&self.config, basis, self.budget.as_ref()) {
                Ok(sol) => {
                    let sends = form.extract_sends(&sol, demand);
                    let mut schedule = schedule_from_sends(
                        "te-ccl-lp",
                        chunk_bytes,
                        tau,
                        sends,
                        start.elapsed().as_secs_f64(),
                    );
                    schedule.num_epochs = schedule.num_epochs.max(form.completion_epoch(&sol) + 1);
                    return Ok(SolveOutcome {
                        schedule,
                        topology_used: topo,
                        formulation: FormulationKind::Lp,
                        status: sol.status,
                        solver_time: start.elapsed(),
                        num_epochs: k,
                        epoch_duration: tau,
                        mip_gap: 0.0,
                        stats: sol.stats.clone(),
                        basis: sol.basis,
                    });
                }
                Err(TeCclError::InfeasibleWithEpochs(_)) => {
                    last_err = TeCclError::InfeasibleWithEpochs(k);
                    k *= 2;
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Solves with the A* technique (§4.2).
    pub fn solve_astar(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
    ) -> Result<SolveOutcome, TeCclError> {
        self.solve_astar_from(demand, chunk_bytes, None)
    }

    /// [`TeCcl::solve_astar`] with a warm-start basis for the first round.
    pub fn solve_astar_from(
        &self,
        demand: &DemandMatrix,
        chunk_bytes: f64,
        basis: Option<&SimplexBasis>,
    ) -> Result<SolveOutcome, TeCclError> {
        let start = Instant::now();
        let (topo, _groups, tau, _k) = self.prepare(demand, chunk_bytes);
        let out = solve_astar_budgeted(
            &topo,
            demand,
            chunk_bytes,
            &self.config,
            tau,
            basis,
            self.budget.as_ref(),
        )?;
        let delta_of = |a, b| {
            topo.link_between(a, b)
                .map(|l| delta_epochs(l, tau) + kappa_epochs(l, chunk_bytes, tau) - 1)
                .unwrap_or(0)
        };
        let pruned = prune_sends(&out.sends, demand, &out.initial_holders, delta_of);
        let schedule = schedule_from_sends(
            "te-ccl-astar",
            chunk_bytes,
            tau,
            pruned,
            start.elapsed().as_secs_f64(),
        );
        Ok(SolveOutcome {
            schedule,
            topology_used: topo,
            formulation: FormulationKind::AStar,
            status: SolveStatus::Feasible,
            solver_time: start.elapsed(),
            num_epochs: out.rounds * out.epochs_per_round,
            epoch_duration: tau,
            mip_gap: f64::NAN,
            stats: out.stats.clone(),
            basis: out.final_basis,
        })
    }

    /// Solves a multi-tenant problem (§5): the per-tenant demands are summed
    /// into one demand matrix (disjoint chunk-id ranges) and the tenants'
    /// priorities weight the objective terms of their chunks.
    pub fn solve_multi_tenant(
        &self,
        tenants: &[TenantDemand],
        chunk_bytes: f64,
    ) -> Result<SolveOutcome, TeCclError> {
        if tenants.is_empty() {
            return Err(TeCclError::EmptyDemand);
        }
        let demands: Vec<DemandMatrix> = tenants.iter().map(|t| t.demand.clone()).collect();
        let (combined, ranges) = DemandMatrix::combine(&demands);
        let mut priorities = vec![1.0; combined.num_chunks];
        for (tenant, range) in tenants.iter().zip(ranges.iter()) {
            for c in range.clone() {
                priorities[c] = tenant.priority;
            }
        }
        let mut solver = self.clone();
        solver.config.chunk_priorities = Some(priorities);
        solver.solve(&combined, chunk_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teccl_collective::CollectiveKind;
    use teccl_schedule::{simulate, validate};
    use teccl_topology::{internal2, line_topology, ring_topology, NodeId};

    fn check_outcome(outcome: &SolveOutcome, demand: &DemandMatrix) {
        let report = validate(&outcome.topology_used, demand, &outcome.schedule, false);
        assert!(report.is_valid(), "schedule invalid: {:?}", report.errors);
        let sim = simulate(&outcome.topology_used, demand, &outcome.schedule).unwrap();
        assert!(sim.transfer_time > 0.0);
    }

    #[test]
    fn auto_dispatch_allgather_uses_milp_small() {
        let topo = ring_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(3, &gpus, 1);
        let solver = TeCcl::new(topo, SolverConfig::default());
        let out = solver.solve(&demand, 1e6).unwrap();
        assert_eq!(out.formulation, FormulationKind::GeneralMilp);
        check_outcome(&out, &demand);
    }

    #[test]
    fn auto_dispatch_alltoall_uses_lp() {
        let topo = ring_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_to_all(4, &gpus, 1);
        let solver = TeCcl::new(topo, SolverConfig::default());
        let out = solver.solve(&demand, 1e6).unwrap();
        assert_eq!(out.formulation, FormulationKind::Lp);
        check_outcome(&out, &demand);
    }

    #[test]
    fn broadcast_line_schedule_is_relay() {
        let topo = line_topology(3, 1e9, 1e-6);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let solver = TeCcl::new(topo, SolverConfig::default());
        let out = solver.solve(&demand, 1e6).unwrap();
        check_outcome(&out, &demand);
        // Pruned schedule should be exactly the 2-hop relay.
        assert_eq!(out.schedule.num_sends(), 2);
    }

    #[test]
    fn explicit_astar_solves_allgather() {
        let topo = line_topology(4, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::all_gather(4, &gpus, 1);
        let config = SolverConfig {
            astar_epochs_per_round: Some(3),
            ..Default::default()
        };
        let solver = TeCcl::new(topo, config);
        let out = solver.solve_astar(&demand, 1e6).unwrap();
        assert_eq!(out.formulation, FormulationKind::AStar);
        check_outcome(&out, &demand);
    }

    #[test]
    fn hyperedge_switch_model_produces_runnable_schedule() {
        // Internal2 x2 has a switch; with the hyper-edge model the schedule
        // runs over the transformed topology.
        let topo = internal2(2);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(topo.num_nodes(), &gpus, gpus[0], 1);
        let solver = TeCcl::new(topo, SolverConfig::taccl_comparable().with_max_epochs(6));
        let out = solver.solve_milp(&demand, 1e6).unwrap();
        // The switch is bypassed: direct cross-chassis hyper-edges exist and
        // no link touches the switch node anymore.
        let sw = solver.topology().switches().next().unwrap();
        assert_eq!(out.topology_used.out_links(sw).count(), 0);
        assert!(out.topology_used.link_between(gpus[0], gpus[2]).is_some());
        check_outcome(&out, &demand);
    }

    #[test]
    fn multi_tenant_combines_and_prioritizes() {
        let topo = ring_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let t1 = TenantDemand::new("hi", DemandMatrix::all_gather(3, &gpus, 1)).with_priority(4.0);
        let t2 = TenantDemand::new("lo", DemandMatrix::all_gather(3, &gpus, 1));
        let solver = TeCcl::new(topo, SolverConfig::default().with_max_epochs(8));
        let out = solver.solve_multi_tenant(&[t1, t2], 1e6).unwrap();
        // Both tenants' demands are in the combined matrix and must be valid.
        let demands: Vec<DemandMatrix> = vec![
            DemandMatrix::all_gather(3, &gpus, 1),
            DemandMatrix::all_gather(3, &gpus, 1),
        ];
        let (combined, _) = DemandMatrix::combine(&demands);
        check_outcome(&out, &combined);
    }

    #[test]
    fn infeasible_epoch_budget_retries_and_succeeds() {
        // max_epochs = 1 is not enough for a 2-hop broadcast; the retry with a
        // doubled budget must succeed.
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::broadcast(3, &gpus, NodeId(0), 1);
        let solver = TeCcl::new(topo, SolverConfig::default().with_max_epochs(1));
        let out = solver.solve_milp(&demand, 1e6).unwrap();
        assert!(out.num_epochs >= 2);
        check_outcome(&out, &demand);
    }

    #[test]
    fn gather_collective_via_kind_builder() {
        let topo = line_topology(3, 1e9, 0.0);
        let gpus: Vec<NodeId> = topo.gpus().collect();
        let demand = DemandMatrix::for_collective(CollectiveKind::Gather, 3, &gpus, 1);
        let solver = TeCcl::new(topo, SolverConfig::default());
        let out = solver.solve(&demand, 1e6).unwrap();
        assert_eq!(out.formulation, FormulationKind::Lp);
        check_outcome(&out, &demand);
    }

    #[test]
    fn empty_tenant_list_rejected() {
        let topo = line_topology(2, 1e9, 0.0);
        let solver = TeCcl::new(topo, SolverConfig::default());
        assert!(matches!(
            solver.solve_multi_tenant(&[], 1e6),
            Err(TeCclError::EmptyDemand)
        ));
    }
}
