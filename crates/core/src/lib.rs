#![forbid(unsafe_code)]
//! # teccl-core
//!
//! The TE-CCL collective-communication optimizer: the paper's contribution.
//!
//! TE-CCL models collective communication scheduling as a multi-commodity flow
//! problem over discrete epochs, extended with the three ingredients
//! traditional traffic engineering lacks (§2.2): finite *temporal* demands with
//! proper α-delay modeling, *store-and-forward* buffering at GPUs, and
//! in-network *copy* (multicast).
//!
//! Three formulations are provided, mirroring §3–§4 of the paper:
//!
//! * [`milp_form`] — the general mixed-integer program (§3.1): per-chunk 0/1
//!   flow and buffer variables, supports copy; optimal but the least scalable.
//! * [`lp_form`] — the linear program for copy-free demands such as ALLTOALL
//!   (§4.1): per-source aggregated continuous flows; optimal and scalable.
//! * [`astar`] — the A*-inspired time-partitioned solver (§4.2, Appendix D):
//!   a sequence of smaller MILPs, each rewarded for moving chunks closer to
//!   their destinations; scalable, supports copy, slightly sub-optimal.
//!
//! The top-level entry point is [`TeCcl`] in [`solver`], which picks a
//! formulation per demand (copy-free → LP, otherwise MILP or A* depending on
//! problem size) and returns an executable [`teccl_schedule::Schedule`]
//! together with solve statistics.
//!
//! ```
//! use teccl_core::{SolverConfig, TeCcl};
//! use teccl_collective::DemandMatrix;
//! use teccl_topology::{line_topology, NodeId};
//!
//! // Broadcast one 1 MB chunk from GPU 0 over a 3-GPU line.
//! let topo = line_topology(3, 1.0e9, 1.0e-6);
//! let gpus: Vec<NodeId> = topo.gpus().collect();
//! let demand = DemandMatrix::broadcast(topo.num_nodes(), &gpus, gpus[0], 1);
//! let solver = TeCcl::new(topo, SolverConfig::default());
//! let result = solver.solve(&demand, 1.0e6).unwrap();
//! assert!(result.schedule.num_sends() >= 2);
//! ```

pub mod astar;
pub mod config;
pub mod epochs;
pub mod error;
pub mod extract;
pub mod lp_form;
pub mod milp_form;
pub mod solver;
pub mod switch;

pub use config::{BufferMode, Decompose, EpochStrategy, SolverConfig, SwitchModel};
pub use error::TeCclError;
pub use solver::{SolveOutcome, TeCcl};
