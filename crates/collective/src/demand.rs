//! Demand matrices and collective builders.
//!
//! The demand function `D : N × C × N → {0, 1}` of Table 1, stored densely
//! over `(source, chunk, destination)` triples, plus builders for the standard
//! collectives and multi-tenant combination (§5).

use std::ops::Range;
use teccl_topology::NodeId;

/// The collective operations TE-CCL can schedule.
///
/// The paper evaluates ALLGATHER and ALLTOALL; the remaining collectives are
/// expressible as demand matrices with the same machinery (reductions are
/// modeled by their communication pattern only — compute is outside the α–β
/// model, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Every GPU sends its data to every other GPU (multicast-friendly).
    AllGather,
    /// Every GPU sends a *distinct* piece of data to every other GPU
    /// (no benefit from copy — the LP form applies, §4.1).
    AllToAll,
    /// One root sends the same data to everyone.
    Broadcast,
    /// Everyone sends their data to one root.
    Gather,
    /// One root sends a distinct piece to every other GPU.
    Scatter,
    /// Each GPU ends with one reduced shard (communication pattern of an
    /// all-to-all; reduction compute not modeled).
    ReduceScatter,
    /// ReduceScatter followed by AllGather (communication pattern union).
    AllReduce,
}

impl CollectiveKind {
    /// Whether in-network copy can help this collective (i.e. some chunk is
    /// wanted by more than one destination). Determines whether the MILP/A*
    /// (copy-aware) or the LP form (copy-free, §4.1) is the right formulation.
    pub fn benefits_from_copy(self) -> bool {
        match self {
            CollectiveKind::AllGather | CollectiveKind::Broadcast | CollectiveKind::AllReduce => {
                true
            }
            CollectiveKind::AllToAll
            | CollectiveKind::Gather
            | CollectiveKind::Scatter
            | CollectiveKind::ReduceScatter => false,
        }
    }
}

/// A demand matrix `D[s][c][d]` over the nodes of a topology.
///
/// `num_nodes` is the total node count of the topology (switches included so
/// `NodeId` indexes directly); switches never appear as sources or
/// destinations.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandMatrix {
    /// Total number of nodes (GPUs + switches) in the topology.
    pub num_nodes: usize,
    /// Number of chunk ids per source (`C` in the paper's notation).
    pub num_chunks: usize,
    /// Dense storage: `wants[s * num_chunks * num_nodes + c * num_nodes + d]`.
    wants: Vec<bool>,
}

impl DemandMatrix {
    /// Creates an empty demand matrix.
    pub fn new(num_nodes: usize, num_chunks: usize) -> Self {
        Self {
            num_nodes,
            num_chunks,
            wants: vec![false; num_nodes * num_chunks * num_nodes],
        }
    }

    #[inline]
    fn idx(&self, s: NodeId, c: usize, d: NodeId) -> usize {
        (s.0 * self.num_chunks + c) * self.num_nodes + d.0
    }

    /// Marks that destination `d` wants chunk `c` of source `s`.
    pub fn set(&mut self, s: NodeId, c: usize, d: NodeId) {
        assert!(c < self.num_chunks && s.0 < self.num_nodes && d.0 < self.num_nodes);
        assert!(s != d, "a node never demands its own chunk");
        let i = self.idx(s, c, d);
        self.wants[i] = true;
    }

    /// Whether destination `d` wants chunk `c` of source `s`.
    pub fn wants(&self, s: NodeId, c: usize, d: NodeId) -> bool {
        self.wants[self.idx(s, c, d)]
    }

    /// All destinations that want chunk `c` of source `s`.
    pub fn destinations_of(&self, s: NodeId, c: usize) -> Vec<NodeId> {
        (0..self.num_nodes)
            .filter(|&d| self.wants(s, c, NodeId(d)))
            .map(NodeId)
            .collect()
    }

    /// Whether any destination wants chunk `c` of source `s` (i.e. the chunk
    /// exists / must be initialized in the source buffer).
    pub fn chunk_in_use(&self, s: NodeId, c: usize) -> bool {
        (0..self.num_nodes).any(|d| self.wants(s, c, NodeId(d)))
    }

    /// Total number of `(s, c, d)` demand triples.
    pub fn total_demands(&self) -> usize {
        self.wants.iter().filter(|&&w| w).count()
    }

    /// Number of chunks destination `d` must receive in total.
    pub fn demand_of_destination(&self, d: NodeId) -> usize {
        (0..self.num_nodes)
            .flat_map(|s| (0..self.num_chunks).map(move |c| (s, c)))
            .filter(|&(s, c)| self.wants(NodeId(s), c, d))
            .count()
    }

    /// Number of distinct destinations source `s` must satisfy, summed over
    /// its chunks (the "amount of data `s` injects" in chunk units when no
    /// copy is available).
    pub fn demand_of_source(&self, s: NodeId) -> usize {
        (0..self.num_chunks)
            .map(|c| self.destinations_of(s, c).len())
            .sum()
    }

    /// `true` if no demand is set.
    pub fn is_empty(&self) -> bool {
        self.total_demands() == 0
    }

    /// Whether some chunk is wanted by more than one destination (copy could
    /// help — see §2.2 "Copy" and Figure 1c).
    pub fn benefits_from_copy(&self) -> bool {
        (0..self.num_nodes)
            .any(|s| (0..self.num_chunks).any(|c| self.destinations_of(NodeId(s), c).len() > 1))
    }

    /// Iterates over all `(source, chunk, destination)` triples with demand.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize, NodeId)> + '_ {
        (0..self.num_nodes).flat_map(move |s| {
            (0..self.num_chunks).flat_map(move |c| {
                (0..self.num_nodes)
                    .filter(move |&d| self.wants(NodeId(s), c, NodeId(d)))
                    .map(move |d| (NodeId(s), c, NodeId(d)))
            })
        })
    }

    // ----- Collective builders -------------------------------------------

    /// ALLGATHER over `gpus`: every source has `chunks` chunks and every other
    /// participant wants all of them.
    pub fn all_gather(num_nodes: usize, gpus: &[NodeId], chunks: usize) -> Self {
        let mut d = Self::new(num_nodes, chunks);
        for &s in gpus {
            for c in 0..chunks {
                for &dst in gpus {
                    if dst != s {
                        d.set(s, c, dst);
                    }
                }
            }
        }
        d
    }

    /// ALLTOALL over `gpus`: every source sends `chunks_per_dest` *distinct*
    /// chunks to each other participant. Chunk ids are laid out as
    /// `dest_index * chunks_per_dest + j` (the paper's "number of chunks"
    /// notation for all-to-all counts chunks per destination, Table 7).
    pub fn all_to_all(num_nodes: usize, gpus: &[NodeId], chunks_per_dest: usize) -> Self {
        let mut d = Self::new(num_nodes, chunks_per_dest * gpus.len());
        for &s in gpus {
            for (di, &dst) in gpus.iter().enumerate() {
                if dst == s {
                    continue;
                }
                for j in 0..chunks_per_dest {
                    d.set(s, di * chunks_per_dest + j, dst);
                }
            }
        }
        d
    }

    /// BROADCAST from `root`: every other participant wants all of the root's
    /// `chunks` chunks.
    pub fn broadcast(num_nodes: usize, gpus: &[NodeId], root: NodeId, chunks: usize) -> Self {
        let mut d = Self::new(num_nodes, chunks);
        for c in 0..chunks {
            for &dst in gpus {
                if dst != root {
                    d.set(root, c, dst);
                }
            }
        }
        d
    }

    /// GATHER to `root`: the root wants all `chunks` chunks of every other
    /// participant.
    pub fn gather(num_nodes: usize, gpus: &[NodeId], root: NodeId, chunks: usize) -> Self {
        let mut d = Self::new(num_nodes, chunks);
        for &s in gpus {
            if s == root {
                continue;
            }
            for c in 0..chunks {
                d.set(s, c, root);
            }
        }
        d
    }

    /// SCATTER from `root`: the root sends `chunks_per_dest` distinct chunks
    /// to each other participant.
    pub fn scatter(
        num_nodes: usize,
        gpus: &[NodeId],
        root: NodeId,
        chunks_per_dest: usize,
    ) -> Self {
        let mut d = Self::new(num_nodes, chunks_per_dest * gpus.len());
        for (di, &dst) in gpus.iter().enumerate() {
            if dst == root {
                continue;
            }
            for j in 0..chunks_per_dest {
                d.set(root, di * chunks_per_dest + j, dst);
            }
        }
        d
    }

    /// REDUCESCATTER over `gpus`: communication-wise each GPU sends one
    /// distinct shard (of `chunks_per_dest` chunks) to every other GPU —
    /// identical to an all-to-all demand. Reduction compute is not modeled.
    pub fn reduce_scatter(num_nodes: usize, gpus: &[NodeId], chunks_per_dest: usize) -> Self {
        Self::all_to_all(num_nodes, gpus, chunks_per_dest)
    }

    /// Builds the demand for a collective kind with a single "chunks" knob
    /// (interpretation depends on the collective; see the individual builders).
    /// Rooted collectives use the first GPU as the root.
    pub fn for_collective(
        kind: CollectiveKind,
        num_nodes: usize,
        gpus: &[NodeId],
        chunks: usize,
    ) -> Self {
        match kind {
            CollectiveKind::AllGather => Self::all_gather(num_nodes, gpus, chunks),
            CollectiveKind::AllToAll => Self::all_to_all(num_nodes, gpus, chunks),
            CollectiveKind::Broadcast => Self::broadcast(num_nodes, gpus, gpus[0], chunks),
            CollectiveKind::Gather => Self::gather(num_nodes, gpus, gpus[0], chunks),
            CollectiveKind::Scatter => Self::scatter(num_nodes, gpus, gpus[0], chunks),
            CollectiveKind::ReduceScatter => Self::reduce_scatter(num_nodes, gpus, chunks),
            CollectiveKind::AllReduce => {
                // Communication pattern: reduce-scatter then all-gather; the
                // union over distinct chunk id ranges.
                let rs = Self::reduce_scatter(num_nodes, gpus, chunks);
                let ag = Self::all_gather(num_nodes, gpus, chunks);
                Self::combine(&[rs, ag]).0
            }
        }
    }

    /// Combines several tenants' demands into one matrix by giving each tenant
    /// a disjoint chunk-id range (§5 "Use in multi-tenant clusters": the
    /// multi-tenant demand is the sum of the per-tenant demands). Returns the
    /// combined matrix and the chunk-id range of each tenant.
    pub fn combine(tenants: &[DemandMatrix]) -> (DemandMatrix, Vec<Range<usize>>) {
        assert!(!tenants.is_empty());
        let num_nodes = tenants[0].num_nodes;
        assert!(
            tenants.iter().all(|t| t.num_nodes == num_nodes),
            "tenants must share a topology"
        );
        let total_chunks: usize = tenants.iter().map(|t| t.num_chunks).sum();
        let mut combined = DemandMatrix::new(num_nodes, total_chunks);
        let mut ranges = Vec::with_capacity(tenants.len());
        let mut offset = 0;
        for t in tenants {
            for (s, c, d) in t.iter() {
                combined.set(s, c + offset, d);
            }
            ranges.push(offset..offset + t.num_chunks);
            offset += t.num_chunks;
        }
        (combined, ranges)
    }
}

/// A tenant's demand plus its scheduling priority (§5: priorities weight the
/// per-tenant completion terms in the objective).
#[derive(Debug, Clone)]
pub struct TenantDemand {
    /// Name of the tenant (for reporting).
    pub name: String,
    /// The tenant's demand.
    pub demand: DemandMatrix,
    /// Priority weight (larger = more important). Must be positive.
    pub priority: f64,
}

impl TenantDemand {
    /// Creates a tenant demand with priority 1.
    pub fn new(name: impl Into<String>, demand: DemandMatrix) -> Self {
        Self {
            name: name.into(),
            demand,
            priority: 1.0,
        }
    }

    /// Sets the priority weight.
    pub fn with_priority(mut self, priority: f64) -> Self {
        assert!(priority > 0.0);
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpus(n: usize) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn all_gather_demand_counts() {
        let g = gpus(4);
        let d = DemandMatrix::all_gather(4, &g, 2);
        // 4 sources * 2 chunks * 3 destinations.
        assert_eq!(d.total_demands(), 24);
        assert!(d.benefits_from_copy());
        assert_eq!(d.demand_of_destination(NodeId(0)), 6);
        assert!(d.wants(NodeId(1), 0, NodeId(2)));
        assert!(!d.wants(NodeId(1), 0, NodeId(1)));
    }

    #[test]
    fn all_to_all_demand_is_distinct_per_destination() {
        let g = gpus(3);
        let d = DemandMatrix::all_to_all(3, &g, 2);
        assert_eq!(d.num_chunks, 6);
        // Each source sends 2 chunks to each of 2 destinations.
        assert_eq!(d.total_demands(), 3 * 2 * 2);
        assert!(!d.benefits_from_copy());
        // Chunk for destination 2 from source 0 is chunk id 2*2 + j.
        assert!(d.wants(NodeId(0), 4, NodeId(2)));
        assert!(!d.wants(NodeId(0), 4, NodeId(1)));
    }

    #[test]
    fn broadcast_gather_scatter() {
        let g = gpus(4);
        let b = DemandMatrix::broadcast(4, &g, NodeId(0), 3);
        assert_eq!(b.total_demands(), 9);
        assert!(b.benefits_from_copy());

        let ga = DemandMatrix::gather(4, &g, NodeId(0), 2);
        assert_eq!(ga.total_demands(), 6);
        assert!(!ga.benefits_from_copy());
        assert_eq!(ga.demand_of_destination(NodeId(0)), 6);
        assert_eq!(ga.demand_of_destination(NodeId(1)), 0);

        let sc = DemandMatrix::scatter(4, &g, NodeId(0), 1);
        assert_eq!(sc.total_demands(), 3);
        assert!(!sc.benefits_from_copy());
    }

    #[test]
    fn allreduce_is_union_of_rs_and_ag() {
        let g = gpus(3);
        let ar = DemandMatrix::for_collective(CollectiveKind::AllReduce, 3, &g, 1);
        let rs = DemandMatrix::reduce_scatter(3, &g, 1);
        let ag = DemandMatrix::all_gather(3, &g, 1);
        assert_eq!(ar.total_demands(), rs.total_demands() + ag.total_demands());
        assert!(ar.benefits_from_copy());
    }

    #[test]
    fn copy_benefit_flags_match_kinds() {
        assert!(CollectiveKind::AllGather.benefits_from_copy());
        assert!(!CollectiveKind::AllToAll.benefits_from_copy());
        assert!(CollectiveKind::Broadcast.benefits_from_copy());
        assert!(!CollectiveKind::Scatter.benefits_from_copy());
    }

    #[test]
    fn switches_excluded_by_construction() {
        // Topology with 5 nodes where node 4 is a switch: pass only GPU ids.
        let g = gpus(4);
        let d = DemandMatrix::all_gather(5, &g, 1);
        assert_eq!(d.num_nodes, 5);
        assert_eq!(d.demand_of_destination(NodeId(4)), 0);
        assert!(!d.chunk_in_use(NodeId(4), 0));
    }

    #[test]
    fn combine_tenants_offsets_chunks() {
        let g = gpus(3);
        let a = DemandMatrix::all_gather(3, &g, 1);
        let b = DemandMatrix::all_to_all(3, &g, 1);
        let (combined, ranges) = DemandMatrix::combine(&[a.clone(), b.clone()]);
        assert_eq!(combined.num_chunks, a.num_chunks + b.num_chunks);
        assert_eq!(
            combined.total_demands(),
            a.total_demands() + b.total_demands()
        );
        assert_eq!(ranges[0], 0..1);
        assert_eq!(ranges[1], 1..4);
        // Tenant A's demand sits in chunk 0.
        assert!(combined.wants(NodeId(0), 0, NodeId(1)));
    }

    #[test]
    fn iter_matches_wants() {
        let g = gpus(3);
        let d = DemandMatrix::all_gather(3, &g, 1);
        let triples: Vec<_> = d.iter().collect();
        assert_eq!(triples.len(), d.total_demands());
        for (s, c, dst) in triples {
            assert!(d.wants(s, c, dst));
        }
    }

    #[test]
    #[should_panic]
    fn self_demand_panics() {
        let mut d = DemandMatrix::new(3, 1);
        d.set(NodeId(1), 0, NodeId(1));
    }

    #[test]
    fn tenant_priority_builder() {
        let g = gpus(3);
        let t =
            TenantDemand::new("training", DemandMatrix::all_gather(3, &g, 1)).with_priority(2.0);
        assert_eq!(t.priority, 2.0);
        assert_eq!(t.name, "training");
    }

    #[test]
    fn demand_of_source_counts_destination_copies() {
        let g = gpus(4);
        let ag = DemandMatrix::all_gather(4, &g, 2);
        // 2 chunks, each wanted by 3 destinations.
        assert_eq!(ag.demand_of_source(NodeId(0)), 6);
        let a2a = DemandMatrix::all_to_all(4, &g, 1);
        assert_eq!(a2a.demand_of_source(NodeId(0)), 3);
    }
}
