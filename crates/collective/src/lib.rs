#![forbid(unsafe_code)]
//! # teccl-collective
//!
//! Collective-communication demands for TE-CCL.
//!
//! A collective (ALLGATHER, ALLTOALL, …) is expressed as a *demand matrix*
//! `D[s][c][d] ∈ {0, 1}` (§3.1, Table 1): whether destination GPU `d` wants
//! chunk `c` originating at source GPU `s`. This crate provides the demand
//! representation, builders for the standard collectives, chunk-size
//! bookkeeping (output buffer size ↔ per-chunk bytes, §6 "Metrics"), and
//! multi-tenant demand combination (§5).

pub mod chunk;
pub mod demand;

pub use chunk::{ChunkSpec, CollectiveSizing};
pub use demand::{CollectiveKind, DemandMatrix, TenantDemand};
