//! Chunk sizing helpers.
//!
//! The paper's metrics (§6) are phrased in terms of the **output buffer size**
//! (the data each GPU holds once the collective finishes — TACCL's metric) and
//! the **transfer size** (the data each GPU sends to each peer). The optimizer
//! itself works in whole chunks; this module converts between the two views.

use crate::demand::CollectiveKind;

/// Physical size of the chunks a demand is split into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSpec {
    /// Size of one chunk in bytes.
    pub chunk_bytes: f64,
    /// Number of chunks each source contributes per destination-relevant unit
    /// (see [`CollectiveSizing`] for the collective-specific meaning).
    pub chunks: usize,
}

impl ChunkSpec {
    /// Creates a new chunk specification.
    pub fn new(chunk_bytes: f64, chunks: usize) -> Self {
        Self {
            chunk_bytes,
            chunks,
        }
    }

    /// Total bytes represented by `n` chunks.
    pub fn bytes(&self, n: usize) -> f64 {
        self.chunk_bytes * n as f64
    }
}

/// Converts between output-buffer / transfer sizes and chunk sizes for a given
/// collective on `num_gpus` participants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveSizing {
    /// The collective kind.
    pub kind: CollectiveKind,
    /// Number of participating GPUs.
    pub num_gpus: usize,
}

impl CollectiveSizing {
    /// Creates a sizing helper.
    pub fn new(kind: CollectiveKind, num_gpus: usize) -> Self {
        Self { kind, num_gpus }
    }

    /// The output buffer size (bytes each GPU has received when the collective
    /// completes) for a given per-source transfer size.
    ///
    /// * ALLGATHER: every GPU receives the full transfer from each of the
    ///   other `n-1` GPUs.
    /// * ALLTOALL: every GPU receives a distinct slice of size
    ///   `transfer / (n-1)`... — in the paper's accounting the transfer size is
    ///   *per destination*, so each GPU still receives `(n-1) * transfer`.
    /// * BROADCAST: each non-root receives the root's transfer once.
    pub fn output_buffer_bytes(&self, transfer_bytes: f64) -> f64 {
        let n = self.num_gpus as f64;
        match self.kind {
            CollectiveKind::AllGather
            | CollectiveKind::AllToAll
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllReduce => (n - 1.0) * transfer_bytes,
            CollectiveKind::Broadcast | CollectiveKind::Scatter => transfer_bytes,
            CollectiveKind::Gather => (n - 1.0) * transfer_bytes,
        }
    }

    /// The per-source transfer size implied by a target output buffer size
    /// (inverse of [`Self::output_buffer_bytes`]).
    pub fn transfer_bytes_for_output_buffer(&self, output_buffer_bytes: f64) -> f64 {
        let n = self.num_gpus as f64;
        match self.kind {
            CollectiveKind::AllGather
            | CollectiveKind::AllToAll
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllReduce
            | CollectiveKind::Gather => output_buffer_bytes / (n - 1.0),
            CollectiveKind::Broadcast | CollectiveKind::Scatter => output_buffer_bytes,
        }
    }

    /// Splits a per-source transfer into `chunks` chunks and returns the
    /// resulting [`ChunkSpec`].
    pub fn chunk_spec(&self, transfer_bytes: f64, chunks: usize) -> ChunkSpec {
        assert!(chunks > 0, "need at least one chunk");
        ChunkSpec::new(transfer_bytes / chunks as f64, chunks)
    }

    /// Convenience: chunk spec for a target output buffer size.
    pub fn chunk_spec_for_output_buffer(
        &self,
        output_buffer_bytes: f64,
        chunks: usize,
    ) -> ChunkSpec {
        self.chunk_spec(
            self.transfer_bytes_for_output_buffer(output_buffer_bytes),
            chunks,
        )
    }
}

/// Parses human-readable sizes like `"1G"`, `"256M"`, `"1.5M"`, `"64K"`,
/// `"100B"`, `"512"` (bytes). Used by the experiment harness to mirror the
/// x-axis labels of Figures 4–6 and Table 8.
///
/// Unit multipliers are powers of two, so scaling is exact in `f64`:
/// `parse_size(&format_size(b)) == Some(b)` for every finite byte count.
pub fn parse_size(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.chars().last().unwrap().to_ascii_uppercase() {
        'G' => (&s[..s.len() - 1], 1024.0 * 1024.0 * 1024.0),
        'M' => (&s[..s.len() - 1], 1024.0 * 1024.0),
        'K' => (&s[..s.len() - 1], 1024.0),
        'B' => (&s[..s.len() - 1], 1.0),
        _ => (s, 1.0),
    };
    if num.is_empty() {
        return None;
    }
    num.parse::<f64>().ok().map(|v| v * mult)
}

/// Formats a byte count the way the paper labels its x-axes (1G, 256M, 64K, …).
///
/// Picks the largest unit whose value prints with at most three decimal
/// places (`1.5M` rather than `1536K`); otherwise falls back to the next
/// smaller unit, ending at raw bytes. Rust's shortest-round-trip float
/// formatting plus exact power-of-two scaling make
/// `parse_size(&format_size(b)) == Some(b)` hold exactly.
pub fn format_size(bytes: f64) -> String {
    const G: f64 = 1024.0 * 1024.0 * 1024.0;
    const M: f64 = 1024.0 * 1024.0;
    const K: f64 = 1024.0;
    for (unit, suffix) in [(G, "G"), (M, "M"), (K, "K")] {
        let v = bytes / unit;
        if v >= 1.0 && (v * 1000.0).fract() == 0.0 {
            return format!("{v}{suffix}");
        }
    }
    format!("{bytes}B")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_output_buffer_roundtrip() {
        let sizing = CollectiveSizing::new(CollectiveKind::AllGather, 8);
        let transfer = sizing.transfer_bytes_for_output_buffer(7.0e9);
        assert!((transfer - 1.0e9).abs() < 1e-3);
        assert!((sizing.output_buffer_bytes(transfer) - 7.0e9).abs() < 1e-3);
    }

    #[test]
    fn broadcast_sizes() {
        let sizing = CollectiveSizing::new(CollectiveKind::Broadcast, 4);
        assert_eq!(sizing.output_buffer_bytes(5.0), 5.0);
        assert_eq!(sizing.transfer_bytes_for_output_buffer(5.0), 5.0);
    }

    #[test]
    fn chunk_spec_division() {
        let sizing = CollectiveSizing::new(CollectiveKind::AllToAll, 4);
        let spec = sizing.chunk_spec(4.0e6, 4);
        assert_eq!(spec.chunks, 4);
        assert!((spec.chunk_bytes - 1.0e6).abs() < 1e-9);
        assert!((spec.bytes(3) - 3.0e6).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_chunks_panics() {
        CollectiveSizing::new(CollectiveKind::AllGather, 4).chunk_spec(1.0, 0);
    }

    #[test]
    fn parse_and_format_sizes() {
        assert_eq!(parse_size("1G"), Some(1024.0 * 1024.0 * 1024.0));
        assert_eq!(parse_size("256M"), Some(256.0 * 1024.0 * 1024.0));
        assert_eq!(parse_size("64k"), Some(64.0 * 1024.0));
        assert_eq!(parse_size("100"), Some(100.0));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("abc"), None);
        assert_eq!(format_size(1024.0 * 1024.0 * 1024.0), "1G");
        assert_eq!(format_size(256.0 * 1024.0 * 1024.0), "256M");
        assert_eq!(format_size(4.0 * 1024.0), "4K");
        assert_eq!(format_size(100.0), "100B");
    }

    #[test]
    fn format_parse_roundtrip() {
        for s in [
            "1G", "256M", "64M", "16M", "4M", "1M", "256K", "64K", "16K", "4K", "1K",
        ] {
            let bytes = parse_size(s).unwrap();
            assert_eq!(format_size(bytes), s);
        }
    }

    #[test]
    fn fractional_sizes_keep_their_unit() {
        // "1.5M" used to round-trip into "1536K", losing the label's intent.
        let b = parse_size("1.5M").unwrap();
        assert_eq!(b, 1.5 * 1024.0 * 1024.0);
        assert_eq!(format_size(b), "1.5M");
        assert_eq!(parse_size(&format_size(b)), Some(b));
        assert_eq!(format_size(parse_size("2.25G").unwrap()), "2.25G");
        // A byte count with no short fractional form falls to the next unit.
        assert_eq!(format_size(1025.0 * 1024.0), "1025K");
    }

    #[test]
    fn bytes_suffix_parses() {
        // format_size emits "100B" for sub-KB sizes; parse must accept it.
        assert_eq!(parse_size("100B"), Some(100.0));
        assert_eq!(parse_size("0.5B"), Some(0.5));
        assert_eq!(parse_size("B"), None);
        assert_eq!(format_size(100.0), "100B");
        assert_eq!(parse_size(&format_size(102.4)), Some(102.4));
    }

    #[test]
    fn parse_format_roundtrip_property_random_byte_counts() {
        // parse_size(format_size(b)) == b exactly, for random integer byte
        // counts across the whole paper-relevant range and for random
        // fractional chunk sizes (power-of-two unit scaling is exact in f64).
        let mut seed = 0x5eed_517e5u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 11
        };
        for i in 0..2000 {
            let b = if i % 2 == 0 {
                // Integer byte counts up to ~1 TB.
                (next() % (1u64 << 40)) as f64
            } else {
                // Fractional sizes (e.g. transfer / (n-1) splits).
                (next() % (1u64 << 30)) as f64 + (next() % 1000) as f64 / 1000.0
            };
            let label = format_size(b);
            assert_eq!(
                parse_size(&label),
                Some(b),
                "round-trip failed for {b} via {label:?}"
            );
        }
        // The paper's axis labels themselves are fixed points.
        for s in ["1G", "256M", "1.5M", "64K", "100B"] {
            let b = parse_size(s).unwrap();
            assert_eq!(format_size(b), s, "label {s} not a fixed point");
        }
    }
}
