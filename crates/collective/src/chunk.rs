//! Chunk sizing helpers.
//!
//! The paper's metrics (§6) are phrased in terms of the **output buffer size**
//! (the data each GPU holds once the collective finishes — TACCL's metric) and
//! the **transfer size** (the data each GPU sends to each peer). The optimizer
//! itself works in whole chunks; this module converts between the two views.

use crate::demand::CollectiveKind;

/// Physical size of the chunks a demand is split into.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSpec {
    /// Size of one chunk in bytes.
    pub chunk_bytes: f64,
    /// Number of chunks each source contributes per destination-relevant unit
    /// (see [`CollectiveSizing`] for the collective-specific meaning).
    pub chunks: usize,
}

impl ChunkSpec {
    /// Creates a new chunk specification.
    pub fn new(chunk_bytes: f64, chunks: usize) -> Self {
        Self {
            chunk_bytes,
            chunks,
        }
    }

    /// Total bytes represented by `n` chunks.
    pub fn bytes(&self, n: usize) -> f64 {
        self.chunk_bytes * n as f64
    }
}

/// Converts between output-buffer / transfer sizes and chunk sizes for a given
/// collective on `num_gpus` participants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveSizing {
    /// The collective kind.
    pub kind: CollectiveKind,
    /// Number of participating GPUs.
    pub num_gpus: usize,
}

impl CollectiveSizing {
    /// Creates a sizing helper.
    pub fn new(kind: CollectiveKind, num_gpus: usize) -> Self {
        Self { kind, num_gpus }
    }

    /// The output buffer size (bytes each GPU has received when the collective
    /// completes) for a given per-source transfer size.
    ///
    /// * ALLGATHER: every GPU receives the full transfer from each of the
    ///   other `n-1` GPUs.
    /// * ALLTOALL: every GPU receives a distinct slice of size
    ///   `transfer / (n-1)`... — in the paper's accounting the transfer size is
    ///   *per destination*, so each GPU still receives `(n-1) * transfer`.
    /// * BROADCAST: each non-root receives the root's transfer once.
    pub fn output_buffer_bytes(&self, transfer_bytes: f64) -> f64 {
        let n = self.num_gpus as f64;
        match self.kind {
            CollectiveKind::AllGather
            | CollectiveKind::AllToAll
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllReduce => (n - 1.0) * transfer_bytes,
            CollectiveKind::Broadcast | CollectiveKind::Scatter => transfer_bytes,
            CollectiveKind::Gather => (n - 1.0) * transfer_bytes,
        }
    }

    /// The per-source transfer size implied by a target output buffer size
    /// (inverse of [`Self::output_buffer_bytes`]).
    pub fn transfer_bytes_for_output_buffer(&self, output_buffer_bytes: f64) -> f64 {
        let n = self.num_gpus as f64;
        match self.kind {
            CollectiveKind::AllGather
            | CollectiveKind::AllToAll
            | CollectiveKind::ReduceScatter
            | CollectiveKind::AllReduce
            | CollectiveKind::Gather => output_buffer_bytes / (n - 1.0),
            CollectiveKind::Broadcast | CollectiveKind::Scatter => output_buffer_bytes,
        }
    }

    /// Splits a per-source transfer into `chunks` chunks and returns the
    /// resulting [`ChunkSpec`].
    pub fn chunk_spec(&self, transfer_bytes: f64, chunks: usize) -> ChunkSpec {
        assert!(chunks > 0, "need at least one chunk");
        ChunkSpec::new(transfer_bytes / chunks as f64, chunks)
    }

    /// Convenience: chunk spec for a target output buffer size.
    pub fn chunk_spec_for_output_buffer(
        &self,
        output_buffer_bytes: f64,
        chunks: usize,
    ) -> ChunkSpec {
        self.chunk_spec(
            self.transfer_bytes_for_output_buffer(output_buffer_bytes),
            chunks,
        )
    }
}

/// Parses human-readable sizes like `"1G"`, `"256M"`, `"64K"`, `"512"` (bytes).
/// Used by the experiment harness to mirror the x-axis labels of Figures 4–6
/// and Table 8.
pub fn parse_size(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.chars().last().unwrap().to_ascii_uppercase() {
        'G' => (&s[..s.len() - 1], 1024.0 * 1024.0 * 1024.0),
        'M' => (&s[..s.len() - 1], 1024.0 * 1024.0),
        'K' => (&s[..s.len() - 1], 1024.0),
        _ => (s, 1.0),
    };
    num.parse::<f64>().ok().map(|v| v * mult)
}

/// Formats a byte count the way the paper labels its x-axes (1G, 256M, 64K, …).
pub fn format_size(bytes: f64) -> String {
    const G: f64 = 1024.0 * 1024.0 * 1024.0;
    const M: f64 = 1024.0 * 1024.0;
    const K: f64 = 1024.0;
    if bytes >= G && (bytes / G).fract().abs() < 1e-9 {
        format!("{}G", (bytes / G) as u64)
    } else if bytes >= M && (bytes / M).fract().abs() < 1e-9 {
        format!("{}M", (bytes / M) as u64)
    } else if bytes >= K && (bytes / K).fract().abs() < 1e-9 {
        format!("{}K", (bytes / K) as u64)
    } else {
        format!("{}B", bytes as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allgather_output_buffer_roundtrip() {
        let sizing = CollectiveSizing::new(CollectiveKind::AllGather, 8);
        let transfer = sizing.transfer_bytes_for_output_buffer(7.0e9);
        assert!((transfer - 1.0e9).abs() < 1e-3);
        assert!((sizing.output_buffer_bytes(transfer) - 7.0e9).abs() < 1e-3);
    }

    #[test]
    fn broadcast_sizes() {
        let sizing = CollectiveSizing::new(CollectiveKind::Broadcast, 4);
        assert_eq!(sizing.output_buffer_bytes(5.0), 5.0);
        assert_eq!(sizing.transfer_bytes_for_output_buffer(5.0), 5.0);
    }

    #[test]
    fn chunk_spec_division() {
        let sizing = CollectiveSizing::new(CollectiveKind::AllToAll, 4);
        let spec = sizing.chunk_spec(4.0e6, 4);
        assert_eq!(spec.chunks, 4);
        assert!((spec.chunk_bytes - 1.0e6).abs() < 1e-9);
        assert!((spec.bytes(3) - 3.0e6).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_chunks_panics() {
        CollectiveSizing::new(CollectiveKind::AllGather, 4).chunk_spec(1.0, 0);
    }

    #[test]
    fn parse_and_format_sizes() {
        assert_eq!(parse_size("1G"), Some(1024.0 * 1024.0 * 1024.0));
        assert_eq!(parse_size("256M"), Some(256.0 * 1024.0 * 1024.0));
        assert_eq!(parse_size("64k"), Some(64.0 * 1024.0));
        assert_eq!(parse_size("100"), Some(100.0));
        assert_eq!(parse_size(""), None);
        assert_eq!(parse_size("abc"), None);
        assert_eq!(format_size(1024.0 * 1024.0 * 1024.0), "1G");
        assert_eq!(format_size(256.0 * 1024.0 * 1024.0), "256M");
        assert_eq!(format_size(4.0 * 1024.0), "4K");
        assert_eq!(format_size(100.0), "100B");
    }

    #[test]
    fn format_parse_roundtrip() {
        for s in [
            "1G", "256M", "64M", "16M", "4M", "1M", "256K", "64K", "16K", "4K", "1K",
        ] {
            let bytes = parse_size(s).unwrap();
            assert_eq!(format_size(bytes), s);
        }
    }
}
