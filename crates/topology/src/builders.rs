//! Builders for the topologies used in the paper's evaluation (§6, Table 2,
//! Appendix H) and for the motivating examples of Figure 1.
//!
//! Bandwidths / α values come straight from the paper where published
//! (Figures 11 and 12, Figure 2's caption, §6.1); the proprietary "Internal 1"
//! and "Internal 2" topologies are synthesized from the parameters the paper
//! does publish (GPUs per chassis, edges per chassis, α values) — see
//! DESIGN.md for the substitution rationale.

use crate::graph::{NodeId, Topology};
use crate::{GBPS, MICROSECOND};

/// The 16 bidirectional NVLink connections of a DGX-1 / NDv2 chassis
/// (8 GPUs, 32 directed edges — Table 2). The first 8 pairs form the two
/// "quad" cliques (faster links on NDv2), the rest are the cross connections.
const DGX1_NVLINKS: [(usize, usize); 16] = [
    // quad 0: GPUs 0-3
    (0, 1),
    (0, 2),
    (0, 3),
    (1, 2),
    (1, 3),
    (2, 3),
    // quad 1: GPUs 4-7
    (4, 5),
    (4, 6),
    (4, 7),
    (5, 6),
    (5, 7),
    (6, 7),
    // cross links between the quads
    (0, 4),
    (1, 5),
    (2, 6),
    (3, 7),
];

/// Builds a single DGX-1 chassis: 8 GPUs, 32 directed NVLink edges,
/// 25 GB/s per link, α = 0.7 µs (the values used for the SCCL comparison in
/// §6.1 / Table 3).
pub fn dgx1() -> Topology {
    let mut t = Topology::new("DGX1");
    let gpus: Vec<NodeId> = (0..8).map(|i| t.add_gpu(format!("gpu{i}"), 0)).collect();
    for &(a, b) in &DGX1_NVLINKS {
        t.add_bilink(gpus[a], gpus[b], 25.0 * GBPS, 0.7 * MICROSECOND);
    }
    t
}

/// Builds an `chassis`-chassis NDv2 topology (Figure 11): each chassis is a
/// DGX-1-style 8-GPU NVLink mesh where the intra-quad links run at 50 GB/s and
/// the cross-quad links at 25 GB/s (α = 0.7 µs), and GPUs 0 and 1 of every
/// chassis connect to a shared switch over 12.5 GB/s links with α = 1.3 µs.
///
/// With `chassis == 1` no switch is added.
pub fn ndv2(chassis: usize) -> Topology {
    assert!(chassis >= 1, "need at least one chassis");
    let mut t = Topology::new(format!("NDv2 x{chassis}"));
    let mut all_gpus = Vec::new();
    for c in 0..chassis {
        let gpus: Vec<NodeId> = (0..8)
            .map(|i| t.add_gpu(format!("c{c}/gpu{i}"), c))
            .collect();
        for (idx, &(a, b)) in DGX1_NVLINKS.iter().enumerate() {
            let cap = if idx < 12 { 50.0 * GBPS } else { 25.0 * GBPS };
            t.add_bilink(gpus[a], gpus[b], cap, 0.7 * MICROSECOND);
        }
        all_gpus.push(gpus);
    }
    if chassis > 1 {
        let sw = t.add_switch("ib-switch", 0);
        for gpus in &all_gpus {
            for &g in &gpus[..2] {
                t.add_bilink(g, sw, 12.5 * GBPS, 1.3 * MICROSECOND);
            }
        }
    }
    t
}

/// Builds an `chassis`-chassis DGX-2 topology (Figure 12): each chassis has 16
/// GPUs connected through an NVSwitch node (125 GB/s, α = 0.35 µs — 17 nodes
/// and 32 directed edges per chassis, Table 2). Across chassis, GPUs 0–7 of
/// each chassis send to a shared switch and GPUs 8–15 receive from it over
/// 12.5 GB/s links with α = 2.6 µs.
pub fn dgx2(chassis: usize) -> Topology {
    assert!(chassis >= 1, "need at least one chassis");
    let mut t = Topology::new(format!("DGX2 x{chassis}"));
    let mut senders = Vec::new();
    let mut receivers = Vec::new();
    for c in 0..chassis {
        let gpus: Vec<NodeId> = (0..16)
            .map(|i| t.add_gpu(format!("c{c}/gpu{i}"), c))
            .collect();
        let nvswitch = t.add_switch(format!("c{c}/nvswitch"), c);
        for &g in &gpus {
            t.add_bilink(g, nvswitch, 125.0 * GBPS, 0.35 * MICROSECOND);
        }
        senders.push(gpus[..8].to_vec());
        receivers.push(gpus[8..].to_vec());
    }
    if chassis > 1 {
        let sw = t.add_switch("ib-switch", 0);
        for c in 0..chassis {
            for &g in &senders[c] {
                t.add_link(g, sw, 12.5 * GBPS, 2.6 * MICROSECOND);
            }
            for &g in &receivers[c] {
                t.add_link(sw, g, 12.5 * GBPS, 2.6 * MICROSECOND);
            }
        }
    }
    t
}

/// Synthetic stand-in for the paper's proprietary "Internal 1" topology:
/// 4 GPUs per chassis connected in a ring (8 directed edges per chassis,
/// Table 2) at 25 GB/s with α = 0.6 µs; every GPU also connects to a shared
/// switch at 12.5 GB/s with α = 0.75 µs (the paper notes that *many* nodes per
/// chassis attach to the switch on the internal topologies, §6.1).
pub fn internal1(chassis: usize) -> Topology {
    assert!(chassis >= 1, "need at least one chassis");
    let mut t = Topology::new(format!("Internal1 x{chassis}"));
    let mut all_gpus = Vec::new();
    for c in 0..chassis {
        let gpus: Vec<NodeId> = (0..4)
            .map(|i| t.add_gpu(format!("c{c}/gpu{i}"), c))
            .collect();
        for i in 0..4 {
            t.add_bilink(gpus[i], gpus[(i + 1) % 4], 25.0 * GBPS, 0.6 * MICROSECOND);
        }
        all_gpus.push(gpus);
    }
    if chassis > 1 {
        let sw = t.add_switch("switch", 0);
        for gpus in &all_gpus {
            for &g in gpus {
                t.add_bilink(g, sw, 12.5 * GBPS, 0.75 * MICROSECOND);
            }
        }
    }
    t
}

/// Synthetic stand-in for the paper's proprietary "Internal 2" topology:
/// 2 GPUs per chassis joined by one bidirectional link (2 directed edges per
/// chassis, Table 2) at 25 GB/s with α = 0.6 µs; both GPUs of every chassis
/// connect to a shared switch at 12.5 GB/s with α = 0.75 µs.
pub fn internal2(chassis: usize) -> Topology {
    assert!(chassis >= 1, "need at least one chassis");
    let mut t = Topology::new(format!("Internal2 x{chassis}"));
    let mut all_gpus = Vec::new();
    for c in 0..chassis {
        let a = t.add_gpu(format!("c{c}/gpu0"), c);
        let b = t.add_gpu(format!("c{c}/gpu1"), c);
        t.add_bilink(a, b, 25.0 * GBPS, 0.6 * MICROSECOND);
        all_gpus.push([a, b]);
    }
    if chassis > 1 {
        let sw = t.add_switch("switch", 0);
        for pair in &all_gpus {
            for &g in pair {
                t.add_bilink(g, sw, 12.5 * GBPS, 0.75 * MICROSECOND);
            }
        }
    }
    t
}

/// A simple bidirectional line of `n` GPU nodes with uniform link parameters.
pub fn line_topology(n: usize, capacity: f64, alpha: f64) -> Topology {
    let mut t = Topology::new(format!("line{n}"));
    let nodes: Vec<NodeId> = (0..n).map(|i| t.add_gpu(format!("g{i}"), 0)).collect();
    for w in nodes.windows(2) {
        t.add_bilink(w[0], w[1], capacity, alpha);
    }
    t
}

/// A unidirectional ring of `n` GPU nodes (plus the reverse links so the
/// topology validates; the forward direction carries the given capacity and
/// the reverse the same).
pub fn ring_topology(n: usize, capacity: f64, alpha: f64) -> Topology {
    let mut t = Topology::new(format!("ring{n}"));
    let nodes: Vec<NodeId> = (0..n).map(|i| t.add_gpu(format!("g{i}"), 0)).collect();
    for i in 0..n {
        t.add_bilink(nodes[i], nodes[(i + 1) % n], capacity, alpha);
    }
    t
}

/// A fully connected clique of `n` GPU nodes.
pub fn clique_topology(n: usize, capacity: f64, alpha: f64) -> Topology {
    let mut t = Topology::new(format!("clique{n}"));
    let nodes: Vec<NodeId> = (0..n).map(|i| t.add_gpu(format!("g{i}"), 0)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            t.add_bilink(nodes[i], nodes[j], capacity, alpha);
        }
    }
    t
}

/// The topology of Figure 1a: two sources feeding a destination through a
/// relay, where the direct `s2 → h3` link has a much larger α than the
/// three-hop `s1` path (α₂ = 2β·S + 3α₁ for a unit-chunk transfer), and the
/// final `h3 → d` hop has α = 0. Node order: `s1, h1, h2, h3, d, s2`.
///
/// `chunk_bytes` is the "unit of traffic" of the example; capacities are 1 GB/s.
pub fn fig1a(chunk_bytes: f64, alpha1: f64) -> Topology {
    let cap = 1.0 * GBPS;
    let beta_s = chunk_bytes / cap; // transmission time of one chunk
    let alpha2 = 2.0 * beta_s + 3.0 * alpha1;
    let mut t = Topology::new("fig1a");
    let s1 = t.add_gpu("s1", 0);
    let h1 = t.add_gpu("h1", 0);
    let h2 = t.add_gpu("h2", 0);
    let h3 = t.add_gpu("h3", 0);
    let d = t.add_gpu("d", 0);
    let s2 = t.add_gpu("s2", 0);
    t.add_bilink(s1, h1, cap, alpha1);
    t.add_bilink(h1, h2, cap, alpha1);
    t.add_bilink(h2, h3, cap, alpha1);
    t.add_bilink(h3, d, cap, 0.0);
    t.add_bilink(s2, h3, cap, alpha2);
    t
}

/// The topology of Figure 1b: three sources (`s1..s3`, nodes 0–2) each with a
/// 1-unit/s link into relay `h` (node 3), and a 2-unit/s link from `h` to the
/// destination `d` (node 4). Capacities are scaled by `unit_bytes_per_sec`.
pub fn fig1b(unit_bytes_per_sec: f64) -> Topology {
    let mut t = Topology::new("fig1b");
    let s: Vec<NodeId> = (0..3)
        .map(|i| t.add_gpu(format!("s{}", i + 1), 0))
        .collect();
    let h = t.add_gpu("h", 0);
    let d = t.add_gpu("d", 0);
    for &si in &s {
        t.add_bilink(si, h, unit_bytes_per_sec, 0.0);
    }
    t.add_bilink(h, d, 2.0 * unit_bytes_per_sec, 0.0);
    t
}

/// The topology of Figure 1c: a source `s` (node 0) connected to relay `h`
/// (node 1) which fans out to three destinations `d1..d3` (nodes 2–4), all
/// links 1 unit/s (scaled by `unit_bytes_per_sec`).
pub fn fig1c(unit_bytes_per_sec: f64) -> Topology {
    let mut t = Topology::new("fig1c");
    let s = t.add_gpu("s", 0);
    let h = t.add_gpu("h", 0);
    let ds: Vec<NodeId> = (0..3)
        .map(|i| t.add_gpu(format!("d{}", i + 1), 0))
        .collect();
    t.add_bilink(s, h, unit_bytes_per_sec, 0.0);
    for &di in &ds {
        t.add_bilink(h, di, unit_bytes_per_sec, 0.0);
    }
    t
}

/// The 2-chassis, 8-GPU, 40-edge proprietary topology used for Figure 2
/// (α = 0.6 µs on GPU–GPU links, 0.75 µs on GPU–switch links): two chassis of
/// four fully-connected GPUs (12 directed edges each) plus every GPU attached
/// to a shared switch (16 directed edges) — 40 directed edges total.
pub fn fig2_topology() -> Topology {
    let mut t = Topology::new("fig2-internal");
    let mut all = Vec::new();
    for c in 0..2 {
        let gpus: Vec<NodeId> = (0..4)
            .map(|i| t.add_gpu(format!("c{c}/gpu{i}"), c))
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                t.add_bilink(gpus[i], gpus[j], 25.0 * GBPS, 0.6 * MICROSECOND);
            }
        }
        all.push(gpus);
    }
    let sw = t.add_switch("switch", 0);
    for gpus in &all {
        for &g in gpus {
            t.add_bilink(g, sw, 12.5 * GBPS, 0.75 * MICROSECOND);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx1_matches_table2() {
        let t = dgx1();
        assert_eq!(t.num_gpus(), 8);
        assert_eq!(t.num_links(), 32);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ndv2_single_chassis() {
        let t = ndv2(1);
        assert_eq!(t.num_gpus(), 8);
        assert_eq!(t.num_links(), 32);
        assert_eq!(t.switches().count(), 0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn ndv2_two_chassis_adds_switch_and_uplinks() {
        let t = ndv2(2);
        assert_eq!(t.num_gpus(), 16);
        assert_eq!(t.switches().count(), 1);
        // 2 chassis * 32 + 2 GPUs/chassis * 2 chassis * 2 directions = 72.
        assert_eq!(t.num_links(), 2 * 32 + 2 * 2 * 2);
        assert!(t.validate().is_ok());
        // Link speeds match Figure 11: 50, 25 and 12.5 GB/s present.
        let caps: std::collections::BTreeSet<u64> = t
            .links
            .iter()
            .map(|l| (l.capacity / 1e9).round() as u64)
            .collect();
        assert!(caps.contains(&50) && caps.contains(&25) && caps.contains(&13));
    }

    #[test]
    fn dgx2_matches_table2() {
        let t = dgx2(1);
        assert_eq!(t.num_nodes(), 17);
        assert_eq!(t.num_gpus(), 16);
        assert_eq!(t.num_links(), 32);
        assert!(t.validate().is_ok());
        let t2 = dgx2(2);
        assert_eq!(t2.num_gpus(), 32);
        assert_eq!(t2.num_nodes(), 2 * 17 + 1);
        // 2*32 intra + 16 send + 16 receive.
        assert_eq!(t2.num_links(), 64 + 32);
        assert!(t2.validate().is_ok());
    }

    #[test]
    fn internal_topologies_match_table2_per_chassis_counts() {
        let t1 = internal1(1);
        assert_eq!(t1.num_gpus(), 4);
        assert_eq!(t1.num_links(), 8);
        assert!(t1.validate().is_ok());

        let t2 = internal2(1);
        assert_eq!(t2.num_gpus(), 2);
        assert_eq!(t2.num_links(), 2);
        assert!(t2.validate().is_ok());

        for c in [2, 4, 8] {
            assert!(internal1(c).validate().is_ok());
            assert!(internal2(c).validate().is_ok());
            assert_eq!(internal1(c).num_gpus(), 4 * c);
            assert_eq!(internal2(c).num_gpus(), 2 * c);
        }
    }

    #[test]
    fn internal_alphas_match_paper() {
        let t = internal1(2);
        for l in &t.links {
            let a_us = l.alpha / MICROSECOND;
            assert!((a_us - 0.6).abs() < 1e-9 || (a_us - 0.75).abs() < 1e-9);
        }
    }

    #[test]
    fn fig2_topology_counts() {
        let t = fig2_topology();
        assert_eq!(t.num_gpus(), 8);
        assert_eq!(t.num_links(), 40);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn fig1a_alpha_relationship() {
        let chunk = 1e6; // 1 MB
        let alpha1 = 1e-6;
        let t = fig1a(chunk, alpha1);
        assert_eq!(t.num_gpus(), 6);
        let s2 = NodeId(5);
        let h3 = NodeId(3);
        let l = t.link_between(s2, h3).unwrap();
        let beta_s = chunk / (1.0 * GBPS);
        assert!((l.alpha - (2.0 * beta_s + 3.0 * alpha1)).abs() < 1e-15);
        // h3 -> d has zero alpha.
        assert_eq!(t.link_between(h3, NodeId(4)).unwrap().alpha, 0.0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn fig1b_and_fig1c_shapes() {
        let b = fig1b(1e9);
        assert_eq!(b.num_gpus(), 5);
        assert_eq!(b.link_between(NodeId(3), NodeId(4)).unwrap().capacity, 2e9);
        assert!(b.validate().is_ok());

        let c = fig1c(1e9);
        assert_eq!(c.num_gpus(), 5);
        assert_eq!(c.out_links(NodeId(1)).count(), 4); // 3 dests + back to s
        assert!(c.validate().is_ok());
    }

    #[test]
    fn generic_builders() {
        assert_eq!(line_topology(4, 1e9, 0.0).num_links(), 6);
        assert_eq!(ring_topology(5, 1e9, 0.0).num_links(), 10);
        assert_eq!(clique_topology(4, 1e9, 0.0).num_links(), 12);
        assert!(clique_topology(4, 1e9, 0.0).validate().is_ok());
        assert!(ring_topology(3, 1e9, 1e-6).validate().is_ok());
    }

    #[test]
    #[should_panic]
    fn zero_chassis_panics() {
        let _ = ndv2(0);
    }
}
