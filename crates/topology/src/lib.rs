#![forbid(unsafe_code)]
//! # teccl-topology
//!
//! GPU cluster topologies for TE-CCL: a directed-graph model of GPUs, switches
//! and links annotated with the α–β cost model the paper uses (per-link fixed
//! latency α and bandwidth, i.e. β = 1/capacity), plus builders for the
//! topologies evaluated in the paper (DGX1, NDv2, DGX2, and synthetic stand-ins
//! for the proprietary "Internal 1" / "Internal 2" cloud topologies) and the
//! motivating examples of Figure 1.
//!
//! Capacities are expressed in **bytes per second** and α in **seconds**; the
//! optimizer converts them into chunks-per-epoch once a chunk size and epoch
//! duration are chosen (§5 of the paper).

pub mod builders;
pub mod graph;
pub mod paths;

pub use builders::*;
pub use graph::{Link, LinkId, Node, NodeId, NodeKind, Topology, TopologyError};
pub use paths::{all_pairs_alpha_distance, floyd_warshall, shortest_path, PathMatrix};

/// One gigabyte per second, in bytes per second.
pub const GBPS: f64 = 1.0e9;

/// One microsecond, in seconds.
pub const MICROSECOND: f64 = 1.0e-6;
