//! Shortest-path helpers: Floyd–Warshall all-pairs distances (used by the A*
//! technique's distance reward, App. D) and path reconstruction (used by the
//! shortest-path baseline and the LP rate-to-path decomposition).

use crate::graph::{NodeId, Topology};

/// All-pairs distance/next-hop matrices produced by [`floyd_warshall`].
#[derive(Debug, Clone)]
pub struct PathMatrix {
    /// Number of nodes.
    pub n: usize,
    /// `dist[i*n + j]`: shortest distance from node i to node j
    /// (`f64::INFINITY` if unreachable).
    pub dist: Vec<f64>,
    /// `next[i*n + j]`: the next hop on a shortest path from i to j.
    pub next: Vec<Option<NodeId>>,
}

impl PathMatrix {
    /// Distance from `i` to `j`.
    pub fn distance(&self, i: NodeId, j: NodeId) -> f64 {
        self.dist[i.0 * self.n + j.0]
    }

    /// Reconstructs a shortest path from `i` to `j` (inclusive of both ends).
    /// Returns `None` if `j` is unreachable from `i`.
    pub fn path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        if i == j {
            return Some(vec![i]);
        }
        self.next[i.0 * self.n + j.0]?;
        let mut path = vec![i];
        let mut cur = i;
        while cur != j {
            cur = self.next[cur.0 * self.n + j.0]?;
            path.push(cur);
            if path.len() > self.n + 1 {
                return None; // defensive: malformed next matrix
            }
        }
        Some(path)
    }
}

/// Runs Floyd–Warshall over the topology with a custom per-link weight.
pub fn floyd_warshall<F>(topo: &Topology, weight: F) -> PathMatrix
where
    F: Fn(&crate::graph::Link) -> f64,
{
    let n = topo.num_nodes();
    let mut dist = vec![f64::INFINITY; n * n];
    let mut next: Vec<Option<NodeId>> = vec![None; n * n];
    for i in 0..n {
        dist[i * n + i] = 0.0;
    }
    for l in &topo.links {
        let w = weight(l);
        let idx = l.src.0 * n + l.dst.0;
        if w < dist[idx] {
            dist[idx] = w;
            next[idx] = Some(l.dst);
        }
    }
    for k in 0..n {
        for i in 0..n {
            let dik = dist[i * n + k];
            if !dik.is_finite() {
                continue;
            }
            for j in 0..n {
                let alt = dik + dist[k * n + j];
                if alt < dist[i * n + j] {
                    dist[i * n + j] = alt;
                    next[i * n + j] = next[i * n + k];
                }
            }
        }
    }
    PathMatrix { n, dist, next }
}

/// All-pairs α-distance (the weight the A* reward uses, App. D: the minimum
/// cumulative α-delay between nodes; links with α = 0 still cost a small ε so
/// hop counts break ties).
pub fn all_pairs_alpha_distance(topo: &Topology) -> PathMatrix {
    floyd_warshall(topo, |l| l.alpha.max(1e-12))
}

/// Shortest path between two nodes by a custom weight; convenience wrapper
/// over [`floyd_warshall`] for one-off queries (Dijkstra would be cheaper, but
/// path queries in this codebase are always preceded by an all-pairs run).
pub fn shortest_path<F>(topo: &Topology, from: NodeId, to: NodeId, weight: F) -> Option<Vec<NodeId>>
where
    F: Fn(&crate::graph::Link) -> f64,
{
    floyd_warshall(topo, weight).path(from, to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::line_topology;
    use crate::graph::Topology;

    #[test]
    fn line_distances_accumulate() {
        // 4-node line with α = 1µs per hop in both directions.
        let t = line_topology(4, 1e9, 1e-6);
        let pm = all_pairs_alpha_distance(&t);
        assert!((pm.distance(NodeId(0), NodeId(3)) - 3e-6).abs() < 1e-12);
        assert!((pm.distance(NodeId(3), NodeId(0)) - 3e-6).abs() < 1e-12);
        assert_eq!(pm.distance(NodeId(2), NodeId(2)), 0.0);
    }

    #[test]
    fn path_reconstruction() {
        let t = line_topology(5, 1e9, 1e-6);
        let pm = all_pairs_alpha_distance(&t);
        let p = pm.path(NodeId(0), NodeId(4)).unwrap();
        assert_eq!(
            p,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(pm.path(NodeId(2), NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn unreachable_is_infinite() {
        let mut t = Topology::new("split");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        let c = t.add_gpu("c", 1);
        t.add_bilink(a, b, 1e9, 1e-6);
        let pm = all_pairs_alpha_distance(&t);
        assert!(pm.distance(a, c).is_infinite());
        assert!(pm.path(a, c).is_none());
    }

    #[test]
    fn picks_cheaper_of_parallel_routes() {
        // a -> b direct (expensive) or a -> c -> b (cheap).
        let mut t = Topology::new("detour");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        let c = t.add_gpu("c", 0);
        t.add_link(a, b, 1e9, 10e-6);
        t.add_link(a, c, 1e9, 1e-6);
        t.add_link(c, b, 1e9, 1e-6);
        t.add_link(b, a, 1e9, 1e-6); // make it validate-irrelevant; not needed here
        let pm = all_pairs_alpha_distance(&t);
        assert!((pm.distance(a, b) - 2e-6).abs() < 1e-12);
        assert_eq!(pm.path(a, b).unwrap(), vec![a, c, b]);
    }

    #[test]
    fn custom_weight_hop_count() {
        let t = line_topology(4, 1e9, 1e-6);
        let pm = floyd_warshall(&t, |_| 1.0);
        assert_eq!(pm.distance(NodeId(0), NodeId(3)), 3.0);
    }

    #[test]
    fn brute_force_cross_check_on_random_graphs() {
        // Property-style test with a fixed seed: FW distances match a
        // Bellman-Ford-style relaxation run to convergence.
        use teccl_util::Rng64;
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10 {
            let n = 6;
            let mut t = Topology::new("rand");
            for i in 0..n {
                t.add_gpu(format!("g{i}"), 0);
            }
            for i in 0..n {
                for j in 0..n {
                    if i != j && rng.gen_bool(0.5) {
                        t.add_link(NodeId(i), NodeId(j), 1e9, rng.gen_range_f64(1.0e-6, 9.0e-6));
                    }
                }
            }
            let pm = all_pairs_alpha_distance(&t);
            // Bellman-Ford from each source.
            for s in 0..n {
                let mut dist = vec![f64::INFINITY; n];
                dist[s] = 0.0;
                for _ in 0..n {
                    for l in &t.links {
                        let w = l.alpha.max(1e-12);
                        if dist[l.src.0] + w < dist[l.dst.0] {
                            dist[l.dst.0] = dist[l.src.0] + w;
                        }
                    }
                }
                for (d, &bf) in dist.iter().enumerate().take(n) {
                    let fw = pm.distance(NodeId(s), NodeId(d));
                    if bf.is_infinite() {
                        assert!(fw.is_infinite());
                    } else {
                        assert!((fw - bf).abs() < 1e-12);
                    }
                }
            }
        }
    }
}
