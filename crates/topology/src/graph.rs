//! The directed-graph topology model.
//!
//! Nodes are either GPUs (which can buffer chunks, consume demands and copy
//! data) or switches (which have no buffer — the paper pins switch buffers to
//! zero). Links are **unidirectional** and carry a capacity (bytes/second) and
//! a fixed latency α (seconds), exactly the α–β model of §2.1.

use std::collections::BTreeSet;
use std::fmt;

use teccl_util::json::{JsonError, Value};

/// Identifier of a node inside a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a link inside a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Kind of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A GPU: holds demands, buffers chunks (store-and-forward) and can copy.
    Gpu,
    /// A switch: no buffer; copy support is a property of the solver's switch
    /// model (§3.1 "Modeling switches"), not of the topology.
    Switch,
}

/// A node of the topology.
#[derive(Debug, Clone)]
pub struct Node {
    /// Identifier (index into [`Topology::nodes`]).
    pub id: NodeId,
    /// GPU or switch.
    pub kind: NodeKind,
    /// Human-readable name, e.g. `"chassis0/gpu3"`.
    pub name: String,
    /// Chassis index this node belongs to (switches that span chassis use the
    /// chassis of their creation; purely informational).
    pub chassis: usize,
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Identifier (index into [`Topology::links`]).
    pub id: LinkId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Capacity in bytes per second (β = 1/capacity).
    pub capacity: f64,
    /// Fixed latency α in seconds.
    pub alpha: f64,
}

impl Link {
    /// Time in seconds to push `bytes` through this link: α + bytes/capacity.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.alpha + bytes / self.capacity
    }

    /// Pure transmission (β) time for `bytes`, without the α term.
    pub fn transmission_time(&self, bytes: f64) -> f64 {
        bytes / self.capacity
    }
}

/// Errors produced while building or validating a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A link references a node that does not exist.
    UnknownNode(usize),
    /// Self-loop links are not allowed.
    SelfLoop(NodeId),
    /// A link has a non-positive capacity or a negative α.
    BadLinkParameters { src: NodeId, dst: NodeId },
    /// The GPUs of the topology are not mutually reachable.
    Disconnected { from: NodeId, to: NodeId },
    /// A duplicate link between the same ordered pair of nodes.
    DuplicateLink { src: NodeId, dst: NodeId },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(i) => write!(f, "link references unknown node {i}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            TopologyError::BadLinkParameters { src, dst } => {
                write!(
                    f,
                    "link {src}->{dst} has non-positive capacity or negative alpha"
                )
            }
            TopologyError::Disconnected { from, to } => {
                write!(f, "GPU {to} is not reachable from GPU {from}")
            }
            TopologyError::DuplicateLink { src, dst } => {
                write!(f, "duplicate link {src}->{dst}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A directed GPU-cluster topology.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Human-readable name ("DGX1", "NDv2 x2", ...).
    pub name: String,
    /// All nodes.
    pub nodes: Vec<Node>,
    /// All links.
    pub links: Vec<Link>,
    /// Outgoing link ids per node.
    out_links: Vec<Vec<LinkId>>,
    /// Incoming link ids per node.
    in_links: Vec<Vec<LinkId>>,
}

impl Topology {
    /// Creates an empty topology with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a GPU node and returns its id.
    pub fn add_gpu(&mut self, name: impl Into<String>, chassis: usize) -> NodeId {
        self.add_node(NodeKind::Gpu, name, chassis)
    }

    /// Adds a switch node and returns its id.
    pub fn add_switch(&mut self, name: impl Into<String>, chassis: usize) -> NodeId {
        self.add_node(NodeKind::Switch, name, chassis)
    }

    fn add_node(&mut self, kind: NodeKind, name: impl Into<String>, chassis: usize) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            name: name.into(),
            chassis,
        });
        self.out_links.push(Vec::new());
        self.in_links.push(Vec::new());
        id
    }

    /// Adds a unidirectional link `src -> dst` with the given capacity
    /// (bytes/s) and α (seconds). Returns its id.
    pub fn add_link(&mut self, src: NodeId, dst: NodeId, capacity: f64, alpha: f64) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(Link {
            id,
            src,
            dst,
            capacity,
            alpha,
        });
        self.out_links[src.0].push(id);
        self.in_links[dst.0].push(id);
        id
    }

    /// Adds a pair of links `a -> b` and `b -> a` with identical parameters.
    pub fn add_bilink(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: f64,
        alpha: f64,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, capacity, alpha),
            self.add_link(b, a, capacity, alpha),
        )
    }

    /// Number of nodes (GPUs + switches).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links (directed edges).
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Iterator over all GPU node ids.
    pub fn gpus(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Gpu)
            .map(|n| n.id)
    }

    /// Iterator over all switch node ids.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Switch)
            .map(|n| n.id)
    }

    /// Number of GPU nodes.
    pub fn num_gpus(&self) -> usize {
        self.gpus().count()
    }

    /// Whether `node` is a switch.
    pub fn is_switch(&self, node: NodeId) -> bool {
        self.nodes[node.0].kind == NodeKind::Switch
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.out_links[node.0].iter().map(move |l| &self.links[l.0])
    }

    /// Incoming links of a node.
    pub fn in_links(&self, node: NodeId) -> impl Iterator<Item = &Link> + '_ {
        self.in_links[node.0].iter().map(move |l| &self.links[l.0])
    }

    /// The first link from `src` to `dst`, if any.
    pub fn link_between(&self, src: NodeId, dst: NodeId) -> Option<&Link> {
        self.out_links(src).find(|l| l.dst == dst)
    }

    /// Capacity of the fastest link (bytes/s).
    pub fn fastest_link_capacity(&self) -> f64 {
        self.links.iter().map(|l| l.capacity).fold(0.0, f64::max)
    }

    /// Capacity of the slowest link (bytes/s).
    pub fn slowest_link_capacity(&self) -> f64 {
        self.links
            .iter()
            .map(|l| l.capacity)
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest α over all links (seconds).
    pub fn max_alpha(&self) -> f64 {
        self.links.iter().map(|l| l.alpha).fold(0.0, f64::max)
    }

    /// Scales every link's α by `factor` (used by experiments that compare
    /// α = 0 against α > 0, e.g. Figure 7 / Figure 9).
    pub fn with_alpha_scaled(&self, factor: f64) -> Topology {
        let mut t = self.clone();
        for l in &mut t.links {
            l.alpha *= factor;
        }
        t
    }

    /// Serializes the topology to a JSON document.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("name", Value::from(self.name.clone())),
            (
                "nodes",
                Value::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            Value::obj(vec![
                                (
                                    "kind",
                                    Value::from(match n.kind {
                                        NodeKind::Gpu => "gpu",
                                        NodeKind::Switch => "switch",
                                    }),
                                ),
                                ("name", Value::from(n.name.clone())),
                                ("chassis", Value::from(n.chassis)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "links",
                Value::Arr(
                    self.links
                        .iter()
                        .map(|l| {
                            Value::obj(vec![
                                ("src", Value::from(l.src.0)),
                                ("dst", Value::from(l.dst.0)),
                                ("capacity", Value::from(l.capacity)),
                                ("alpha", Value::from(l.alpha)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a topology from the JSON produced by
    /// [`Topology::to_json_value`]. Adjacency lists are rebuilt.
    pub fn from_json_value(v: &Value) -> Result<Topology, JsonError> {
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or(bad("missing name"))?;
        let mut t = Topology::new(name);
        for n in v
            .get("nodes")
            .and_then(Value::as_arr)
            .ok_or(bad("missing nodes"))?
        {
            let nname = n
                .get("name")
                .and_then(Value::as_str)
                .ok_or(bad("node name"))?;
            let chassis = n
                .get("chassis")
                .and_then(Value::as_usize)
                .ok_or(bad("node chassis"))?;
            match n.get("kind").and_then(Value::as_str) {
                Some("gpu") => t.add_gpu(nname, chassis),
                Some("switch") => t.add_switch(nname, chassis),
                _ => return Err(bad("node kind")),
            };
        }
        for l in v
            .get("links")
            .and_then(Value::as_arr)
            .ok_or(bad("missing links"))?
        {
            let src = l
                .get("src")
                .and_then(Value::as_usize)
                .ok_or(bad("link src"))?;
            let dst = l
                .get("dst")
                .and_then(Value::as_usize)
                .ok_or(bad("link dst"))?;
            let capacity = l
                .get("capacity")
                .and_then(Value::as_f64)
                .ok_or(bad("link capacity"))?;
            let alpha = l
                .get("alpha")
                .and_then(Value::as_f64)
                .ok_or(bad("link alpha"))?;
            if src >= t.num_nodes() || dst >= t.num_nodes() {
                return Err(bad("link references unknown node"));
            }
            t.add_link(NodeId(src), NodeId(dst), capacity, alpha);
        }
        Ok(t)
    }

    /// Parses a topology from a JSON string.
    pub fn from_json_str(text: &str) -> Result<Topology, JsonError> {
        Self::from_json_value(&Value::parse(text)?)
    }

    /// A deterministic 64-bit fingerprint of the topology *graph*: node kinds
    /// and chassis in index order, links in canonical `(src, dst)` order
    /// (insertion order of equal links does not matter), capacities and α
    /// quantized so floating-point noise does not split otherwise identical
    /// topologies. Names are deliberately excluded — renaming a cluster must
    /// not invalidate its cached schedules. Stable across runs and machines
    /// (FNV-1a via [`teccl_util::hash`]), unlike `std::hash`'s per-process
    /// randomized SipHash.
    pub fn fingerprint(&self) -> u64 {
        let mut h = teccl_util::hash::StableHasher::new();
        h.write_usize(self.nodes.len());
        for n in &self.nodes {
            h.write_u64(match n.kind {
                NodeKind::Gpu => 0,
                NodeKind::Switch => 1,
            });
            h.write_usize(n.chassis);
        }
        // Canonical edge ordering: sort by (src, dst). `validate` rejects
        // duplicate directed links, so the order is total.
        let mut order: Vec<usize> = (0..self.links.len()).collect();
        order.sort_by_key(|&i| (self.links[i].src.0, self.links[i].dst.0));
        h.write_usize(self.links.len());
        for i in order {
            let l = &self.links[i];
            h.write_usize(l.src.0);
            h.write_usize(l.dst.0);
            // β = 1/capacity in picoseconds-per-byte resolution and α in
            // picoseconds: fine enough to separate every real link class
            // (25 vs 50 GB/s, 0.6 vs 0.7 µs), coarse enough to absorb noise.
            h.write_f64_quantized(1.0 / l.capacity, 1e12);
            h.write_f64_quantized(l.alpha, 1e12);
        }
        h.finish()
    }

    /// Removes a link (used by the failure-adaptation example). Link ids are
    /// re-assigned, so callers should re-query them afterwards.
    pub fn without_link(&self, src: NodeId, dst: NodeId) -> Topology {
        let mut t = Topology::new(format!("{} (without {}->{})", self.name, src, dst));
        for n in &self.nodes {
            match n.kind {
                NodeKind::Gpu => t.add_gpu(n.name.clone(), n.chassis),
                NodeKind::Switch => t.add_switch(n.name.clone(), n.chassis),
            };
        }
        for l in &self.links {
            if l.src == src && l.dst == dst {
                continue;
            }
            t.add_link(l.src, l.dst, l.capacity, l.alpha);
        }
        t
    }

    /// Validates structural invariants: links reference existing nodes, no
    /// self-loops, positive capacities, non-negative α, no duplicate directed
    /// links, and every GPU can reach every other GPU.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        for l in &self.links {
            if l.src.0 >= self.nodes.len() {
                return Err(TopologyError::UnknownNode(l.src.0));
            }
            if l.dst.0 >= self.nodes.len() {
                return Err(TopologyError::UnknownNode(l.dst.0));
            }
            if l.src == l.dst {
                return Err(TopologyError::SelfLoop(l.src));
            }
            if l.capacity <= 0.0 || l.alpha < 0.0 || !l.capacity.is_finite() || !l.alpha.is_finite()
            {
                return Err(TopologyError::BadLinkParameters {
                    src: l.src,
                    dst: l.dst,
                });
            }
            if !seen.insert((l.src.0, l.dst.0)) {
                return Err(TopologyError::DuplicateLink {
                    src: l.src,
                    dst: l.dst,
                });
            }
        }
        // Reachability between GPUs.
        let gpus: Vec<NodeId> = self.gpus().collect();
        if let Some(&first) = gpus.first() {
            let reach = self.reachable_from(first);
            for &g in &gpus {
                if !reach[g.0] {
                    return Err(TopologyError::Disconnected { from: first, to: g });
                }
            }
            // Also require the reverse direction (reachability towards `first`).
            let rev = self.reachable_to(first);
            for &g in &gpus {
                if !rev[g.0] {
                    return Err(TopologyError::Disconnected { from: g, to: first });
                }
            }
        }
        Ok(())
    }

    /// BFS over outgoing links.
    pub fn reachable_from(&self, start: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.0] = true;
        queue.push_back(start);
        while let Some(n) = queue.pop_front() {
            for l in self.out_links(n) {
                if !seen[l.dst.0] {
                    seen[l.dst.0] = true;
                    queue.push_back(l.dst);
                }
            }
        }
        seen
    }

    /// BFS over incoming links (which nodes can reach `target`).
    pub fn reachable_to(&self, target: NodeId) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[target.0] = true;
        queue.push_back(target);
        while let Some(n) = queue.pop_front() {
            for l in self.in_links(n) {
                if !seen[l.src.0] {
                    seen[l.src.0] = true;
                    queue.push_back(l.src);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gpu_topo() -> Topology {
        let mut t = Topology::new("pair");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        t.add_bilink(a, b, 1e9, 1e-6);
        t
    }

    #[test]
    fn add_nodes_and_links() {
        let t = two_gpu_topo();
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.num_links(), 2);
        assert_eq!(t.num_gpus(), 2);
        assert_eq!(t.switches().count(), 0);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn link_cost_model() {
        let t = two_gpu_topo();
        let l = t.link_between(NodeId(0), NodeId(1)).unwrap();
        // 1 MB over 1 GB/s = 1 ms plus 1 µs alpha.
        let time = l.transfer_time(1e6);
        assert!((time - (1e-3 + 1e-6)).abs() < 1e-12);
        assert!((l.transmission_time(1e6) - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn out_and_in_links() {
        let mut t = Topology::new("tri");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        let c = t.add_gpu("c", 0);
        t.add_link(a, b, 1e9, 0.0);
        t.add_link(a, c, 1e9, 0.0);
        t.add_link(b, a, 1e9, 0.0);
        t.add_link(c, a, 1e9, 0.0);
        assert_eq!(t.out_links(a).count(), 2);
        assert_eq!(t.in_links(a).count(), 2);
        assert_eq!(t.out_links(b).count(), 1);
        assert!(t.link_between(b, c).is_none());
    }

    #[test]
    fn validate_detects_self_loop() {
        let mut t = Topology::new("bad");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        t.add_bilink(a, b, 1e9, 0.0);
        t.add_link(a, a, 1e9, 0.0);
        assert!(matches!(t.validate(), Err(TopologyError::SelfLoop(_))));
    }

    #[test]
    fn validate_detects_bad_capacity() {
        let mut t = Topology::new("bad");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        t.add_link(a, b, 0.0, 0.0);
        t.add_link(b, a, 1e9, 0.0);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::BadLinkParameters { .. })
        ));
    }

    #[test]
    fn validate_detects_disconnected() {
        let mut t = Topology::new("split");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        let c = t.add_gpu("c", 1);
        t.add_bilink(a, b, 1e9, 0.0);
        let _ = c;
        assert!(matches!(
            t.validate(),
            Err(TopologyError::Disconnected { .. })
        ));
    }

    #[test]
    fn validate_detects_one_way_disconnect() {
        let mut t = Topology::new("oneway");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        t.add_link(a, b, 1e9, 0.0);
        // b cannot reach a.
        assert!(matches!(
            t.validate(),
            Err(TopologyError::Disconnected { .. })
        ));
    }

    #[test]
    fn validate_detects_duplicate_link() {
        let mut t = Topology::new("dup");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        t.add_bilink(a, b, 1e9, 0.0);
        t.add_link(a, b, 2e9, 0.0);
        assert!(matches!(
            t.validate(),
            Err(TopologyError::DuplicateLink { .. })
        ));
    }

    #[test]
    fn alpha_scaling() {
        let t = two_gpu_topo();
        let z = t.with_alpha_scaled(0.0);
        assert!(z.links.iter().all(|l| l.alpha == 0.0));
        let d = t.with_alpha_scaled(2.0);
        assert!((d.links[0].alpha - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn without_link_removes_exactly_one_direction() {
        let t = two_gpu_topo();
        let cut = t.without_link(NodeId(0), NodeId(1));
        assert_eq!(cut.num_links(), 1);
        assert!(cut.link_between(NodeId(0), NodeId(1)).is_none());
        assert!(cut.link_between(NodeId(1), NodeId(0)).is_some());
    }

    #[test]
    fn fastest_and_slowest_capacity() {
        let mut t = Topology::new("mix");
        let a = t.add_gpu("a", 0);
        let b = t.add_gpu("b", 0);
        t.add_link(a, b, 1e9, 1e-6);
        t.add_link(b, a, 4e9, 2e-6);
        assert_eq!(t.fastest_link_capacity(), 4e9);
        assert_eq!(t.slowest_link_capacity(), 1e9);
        assert_eq!(t.max_alpha(), 2e-6);
    }

    #[test]
    fn serde_roundtrip() {
        let t = two_gpu_topo();
        let json = t.to_json_value().to_json();
        let back = Topology::from_json_str(&json).unwrap();
        assert_eq!(back.num_nodes(), 2);
        assert_eq!(back.num_links(), 2);
        assert!(back.validate().is_ok());
        assert_eq!(back.out_links(NodeId(0)).count(), 1);
    }

    #[test]
    fn fingerprint_ignores_names_and_link_insertion_order() {
        let t = two_gpu_topo();
        let mut renamed = t.clone();
        renamed.name = "other".into();
        renamed.nodes[0].name = "x".into();
        assert_eq!(t.fingerprint(), renamed.fingerprint());
        // Same links added in the opposite order.
        let mut rev = Topology::new("pair-rev");
        let a = rev.add_gpu("a", 0);
        let b = rev.add_gpu("b", 0);
        rev.add_link(b, a, 1e9, 1e-6);
        rev.add_link(a, b, 1e9, 1e-6);
        assert_eq!(t.fingerprint(), rev.fingerprint());
        // JSON round-trip preserves the fingerprint.
        let back = Topology::from_json_str(&t.to_json_value().to_json()).unwrap();
        assert_eq!(t.fingerprint(), back.fingerprint());
    }

    #[test]
    fn fingerprint_sees_structure_and_parameters() {
        let t = two_gpu_topo();
        let cut = t.without_link(NodeId(0), NodeId(1));
        assert_ne!(t.fingerprint(), cut.fingerprint());
        let slow = {
            let mut s = Topology::new("slow");
            let a = s.add_gpu("a", 0);
            let b = s.add_gpu("b", 0);
            s.add_bilink(a, b, 5e8, 1e-6);
            s
        };
        assert_ne!(t.fingerprint(), slow.fingerprint());
        assert_ne!(t.fingerprint(), t.with_alpha_scaled(2.0).fingerprint());
        // A switch is not a GPU, even with identical links.
        let mut sw = Topology::new("sw");
        let a = sw.add_gpu("a", 0);
        let b = sw.add_switch("b", 0);
        sw.add_bilink(a, b, 1e9, 1e-6);
        assert_ne!(t.fingerprint(), sw.fingerprint());
    }

    /// The ISSUE/serving requirement: every prebuilt topology (including the
    /// chassis variants) must fingerprint distinctly, and repeated
    /// construction must fingerprint stably (the builders are deterministic,
    /// so two runs of the same binary — and, with FNV, two machines — agree).
    #[test]
    fn prebuilt_topologies_fingerprint_distinctly_and_stably() {
        use crate::builders::*;
        type Builder = fn() -> Topology;
        let build: Vec<(&str, Builder)> = vec![
            ("dgx1", dgx1),
            ("ndv2x1", || ndv2(1)),
            ("ndv2x2", || ndv2(2)),
            ("ndv2x4", || ndv2(4)),
            ("dgx2x1", || dgx2(1)),
            ("dgx2x2", || dgx2(2)),
            ("internal1x1", || internal1(1)),
            ("internal1x2", || internal1(2)),
            ("internal1x4", || internal1(4)),
            ("internal2x2", || internal2(2)),
            ("internal2x4", || internal2(4)),
            ("internal2x6", || internal2(6)),
            ("fig2", fig2_topology),
        ];
        let mut seen = std::collections::BTreeMap::new();
        for (name, f) in &build {
            let fp = f().fingerprint();
            assert_eq!(fp, f().fingerprint(), "{name} must hash stably");
            if let Some(prev) = seen.insert(fp, *name) {
                panic!("fingerprint collision: {prev} vs {name}");
            }
        }
    }
}
