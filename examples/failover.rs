//! Adapting to link failures: the paper's introduction argues the flow-based
//! view makes it easy to re-plan collectives when the topology changes. This
//! example schedules a broadcast, fails the link the schedule leans on, and
//! re-solves on the degraded topology.
//!
//! Run with: `cargo run --release --example failover`

use te_ccl::prelude::*;

fn main() {
    // A 4-GPU ring: traffic can go either way around.
    let topo = te_ccl::topology::ring_topology(4, 25.0e9, 0.7e-6);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let demand = DemandMatrix::broadcast(topo.num_nodes(), &gpus, gpus[0], 2);
    let chunk_bytes = 1.0e6;

    let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(12));
    let healthy = solver
        .solve(&demand, chunk_bytes)
        .expect("solve on healthy ring");
    let healthy_sim = simulate(&topo, &demand, &healthy.schedule).unwrap();
    println!(
        "Healthy ring : {} sends, finish {:.3} us",
        healthy.schedule.num_sends(),
        healthy_sim.transfer_time * 1e6
    );

    // Fail the clockwise link out of the root.
    let degraded_topo = topo.without_link(gpus[0], gpus[1]);
    println!(
        "Failing link {} -> {} ({} links remain)",
        gpus[0],
        gpus[1],
        degraded_topo.num_links()
    );

    // Re-plan on the degraded topology: all traffic must now go the other way.
    let solver = TeCcl::new(
        degraded_topo.clone(),
        SolverConfig::default().with_max_epochs(16),
    );
    let degraded = solver
        .solve(&demand, chunk_bytes)
        .expect("solve on degraded ring");
    let report = validate(&degraded_topo, &demand, &degraded.schedule, false);
    assert!(
        report.is_valid(),
        "invalid degraded schedule: {:?}",
        report.errors
    );
    let degraded_sim = simulate(&degraded_topo, &demand, &degraded.schedule).unwrap();
    println!(
        "Degraded ring: {} sends, finish {:.3} us ({:.2}x slower, but still correct)",
        degraded.schedule.num_sends(),
        degraded_sim.transfer_time * 1e6,
        degraded_sim.transfer_time / healthy_sim.transfer_time
    );

    // No send may use the failed link.
    assert!(degraded
        .schedule
        .sends
        .iter()
        .all(|s| !(s.from == gpus[0] && s.to == gpus[1])));
    println!("Re-planned schedule avoids the failed link entirely.");
}
