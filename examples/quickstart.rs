//! Quickstart: schedule an ALLGATHER on a single DGX-1 box with TE-CCL and
//! compare it against the NCCL-style ring schedule.
//!
//! Run with: `cargo run --release --example quickstart`

use te_ccl::baselines::ring_all_gather;
use te_ccl::collective::chunk::format_size;
use te_ccl::prelude::*;

fn main() {
    // 1. Topology: one DGX-1 chassis (8 GPUs, 32 NVLink edges, 25 GB/s,
    //    α = 0.7 µs) — Table 2 of the paper.
    let topo = te_ccl::topology::dgx1();
    let gpus: Vec<NodeId> = topo.gpus().collect();

    // 2. Demand: ALLGATHER — every GPU sends its 1 MB block to every other GPU.
    let chunk_bytes = 1.0e6;
    let demand = DemandMatrix::all_gather(topo.num_nodes(), &gpus, 1);
    let output_buffer = (gpus.len() - 1) as f64 * chunk_bytes;

    // 3. Solve with TE-CCL. The A* formulation keeps this example snappy; use
    //    `solver.solve(..)` to let the library pick the formulation (it would
    //    use the general MILP here because the topology is a single chassis).
    let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop());
    let outcome = solver
        .solve_astar(&demand, chunk_bytes)
        .expect("TE-CCL solve failed");

    // 4. Check and measure the schedule with the α–β simulator.
    let report = validate(&topo, &demand, &outcome.schedule, false);
    assert!(report.is_valid(), "invalid schedule: {:?}", report.errors);
    let sim = simulate(&topo, &demand, &outcome.schedule).expect("simulation failed");

    println!("== TE-CCL ({:?}) ==", outcome.formulation);
    println!("  sends              : {}", outcome.schedule.num_sends());
    println!("  epochs             : {}", outcome.schedule.num_epochs);
    println!(
        "  epoch duration     : {:.3} us",
        outcome.epoch_duration * 1e6
    );
    println!(
        "  solver time        : {:.3} s",
        outcome.solver_time.as_secs_f64()
    );
    println!("  transfer time      : {:.3} us", sim.transfer_time * 1e6);
    println!(
        "  algorithmic bw     : {:.2} GB/s (output buffer {})",
        sim.algorithmic_bandwidth(output_buffer) / 1e9,
        format_size(output_buffer),
    );

    // 5. Baseline: the ring ALLGATHER every collective library ships. The
    //    DGX-1 NVLink mesh contains a Hamiltonian ring through the two quads.
    let ring_order: Vec<NodeId> = [0usize, 1, 2, 3, 7, 6, 5, 4]
        .iter()
        .map(|&i| gpus[i])
        .collect();
    let ring = ring_all_gather(&topo, &ring_order, 1, chunk_bytes).expect("DGX-1 has a ring");
    let ring_sim = simulate(&topo, &demand, &ring).expect("ring simulation failed");
    println!("== Ring baseline ==");
    println!("  sends              : {}", ring.num_sends());
    println!(
        "  transfer time      : {:.3} us",
        ring_sim.transfer_time * 1e6
    );
    println!(
        "  algorithmic bw     : {:.2} GB/s",
        ring_sim.algorithmic_bandwidth(output_buffer) / 1e9
    );

    let speedup = ring_sim.transfer_time / sim.transfer_time;
    println!("TE-CCL finishes the collective {speedup:.2}x faster than the ring schedule.");
}
