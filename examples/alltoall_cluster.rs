//! ALLTOALL on a switch-connected cluster using the scalable LP formulation
//! (§4.1), with the resulting schedule exported in an MSCCL-like JSON format —
//! the path the paper uses to run TE-CCL schedules on real hardware (§6).
//!
//! Run with: `cargo run --release --example alltoall_cluster`

use te_ccl::prelude::*;

fn main() {
    // A 4-chassis "Internal 2" cluster: 8 GPUs around a switch.
    let topo = te_ccl::topology::internal2(4);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    println!(
        "Topology {}: {} GPUs, {} links",
        topo.name,
        topo.num_gpus(),
        topo.num_links()
    );

    // ALLTOALL: every GPU sends a distinct 512 KB block to every other GPU —
    // the demand class that does not benefit from copy, so TE-CCL uses the LP.
    let chunk_bytes = 512.0e3;
    let demand = DemandMatrix::all_to_all(topo.num_nodes(), &gpus, 1);

    let solver = TeCcl::new(topo.clone(), SolverConfig::default().with_max_epochs(24));
    let outcome = solver.solve(&demand, chunk_bytes).expect("LP solve failed");
    assert_eq!(
        outcome.formulation,
        te_ccl::core::solver::FormulationKind::Lp
    );

    let report = validate(&topo, &demand, &outcome.schedule, false);
    assert!(report.is_valid(), "invalid schedule: {:?}", report.errors);
    let sim = simulate(&topo, &demand, &outcome.schedule).unwrap();

    let output_buffer = (gpus.len() - 1) as f64 * chunk_bytes;
    println!("  formulation    : {:?}", outcome.formulation);
    println!(
        "  solver time    : {:.3} s",
        outcome.solver_time.as_secs_f64()
    );
    println!("  transfer time  : {:.3} us", sim.transfer_time * 1e6);
    println!(
        "  algo bandwidth : {:.2} GB/s",
        sim.algorithmic_bandwidth(output_buffer) / 1e9
    );
    println!("  bytes on wire  : {:.1} MB", sim.bytes_on_wire / 1e6);

    // Export the schedule for downstream runtimes.
    let json = outcome.schedule.to_msccl_json();
    let rendered = json.to_json_pretty();
    let path = std::env::temp_dir().join("teccl_alltoall_schedule.json");
    std::fs::write(&path, &rendered).expect("write schedule");
    println!("  MSCCL-like schedule written to {}", path.display());
    println!(
        "  (first 300 chars)\n{}",
        &rendered[..rendered.len().min(300)]
    );
}
