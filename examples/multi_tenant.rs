//! Multi-tenant scheduling (§5 of the paper): two training jobs share the same
//! two-chassis cluster; the production job gets a higher priority than the
//! research job, and TE-CCL schedules both collectives jointly so that the
//! capacity constraints hold across tenants.
//!
//! Run with: `cargo run --release --example multi_tenant`

use te_ccl::prelude::*;

fn main() {
    // A 2-chassis "Internal 2"-style topology (4 GPUs + switch).
    let topo = te_ccl::topology::internal2(2);
    let gpus: Vec<NodeId> = topo.gpus().collect();
    let n = topo.num_nodes();

    // Tenant A (production): ALLGATHER across all four GPUs, priority 4.
    let tenant_a = TenantDemand::new(
        "production-allgather",
        DemandMatrix::all_gather(n, &gpus, 1),
    )
    .with_priority(4.0);
    // Tenant B (research): broadcast from GPU 0, priority 1.
    let tenant_b = TenantDemand::new(
        "research-broadcast",
        DemandMatrix::broadcast(n, &gpus, gpus[0], 1),
    );

    let chunk_bytes = 4.0e6; // 4 MB blocks
    let solver = TeCcl::new(topo.clone(), SolverConfig::early_stop().with_max_epochs(10));
    let outcome = solver
        .solve_multi_tenant(&[tenant_a.clone(), tenant_b.clone()], chunk_bytes)
        .expect("multi-tenant solve failed");

    // The combined demand (tenant chunks occupy disjoint chunk-id ranges).
    let (combined, ranges) =
        DemandMatrix::combine(&[tenant_a.demand.clone(), tenant_b.demand.clone()]);
    let report = validate(&outcome.topology_used, &combined, &outcome.schedule, false);
    assert!(report.is_valid(), "invalid schedule: {:?}", report.errors);
    let sim = simulate(&outcome.topology_used, &combined, &outcome.schedule).unwrap();

    println!(
        "Scheduled {} tenants jointly on {}:",
        ranges.len(),
        topo.name
    );
    println!("  formulation   : {:?}", outcome.formulation);
    println!("  total sends   : {}", outcome.schedule.num_sends());
    println!("  transfer time : {:.3} us", sim.transfer_time * 1e6);

    // Per-tenant completion: when does the last chunk of each tenant land?
    for (tenant, range) in [&tenant_a, &tenant_b].iter().zip(ranges.iter()) {
        let completion = combined
            .iter()
            .filter(|(_, c, _)| range.contains(c))
            .map(|(s, c, d)| {
                sim.availability
                    .get(&(te_ccl::schedule::ChunkId::new(s, c), d))
                    .copied()
                    .unwrap_or(f64::INFINITY)
            })
            .fold(0.0f64, f64::max);
        println!(
            "  tenant `{}` (priority {}) completes at {:.3} us",
            tenant.name,
            tenant.priority,
            completion * 1e6
        );
    }
}
